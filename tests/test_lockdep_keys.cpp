// Tests for lockdep class-key strategies (src/lockdep/class_key.hpp +
// the keyed Shield<L> constructor):
//   * N node-mutexes under one key consume ONE class id (the
//     data-structure-heavy workload no longer exhausts the table);
//   * an AB/BA inversion across DIFFERENT instances of two keyed
//     containers is reported — the cross-instance bug per-instance
//     classes can never see;
//   * per-instance default is preserved, keyed and unkeyed mix;
//   * same-key nesting records no self-edge and raises no report;
//   * shared-class entries survive the acquisition-stack staleness
//     purge (many owners per class must not look like stale hand-offs).
#include <gtest/gtest.h>

#include <memory>
#include <thread>
#include <vector>

#include "core/mcs.hpp"
#include "core/tas.hpp"
#include "core/ticket.hpp"
#include "lockdep/class_key.hpp"
#include "lockdep/lockdep.hpp"
#include "response/response.hpp"
#include "shield/shield.hpp"

using namespace resilock;
using lockdep::Graph;
using lockdep::LockClassKey;
using lockdep::LockdepMode;
using lockdep::LockdepModeGuard;
using shield::ShieldPolicy;

namespace {

lockdep::LockdepStats stats() { return Graph::instance().stats(); }

struct PinnedEnv {
  // Keyed scenarios must not depend on ambient policy configuration.
  response::ResponseRulesGuard rules{""};
  shield::ShieldPolicyGuard policy{ShieldPolicy::kSuppress};
  LockdepModeGuard mode{LockdepMode::kReport};
};

}  // namespace

TEST(LockdepKeys, ThousandNodeMutexesShareOneClass) {
  PinnedEnv pin;
  LockClassKey key("list.node");
  const auto live_before = stats().classes_live;
  {
    std::vector<std::unique_ptr<Shield<TatasLock>>> nodes;
    nodes.reserve(1000);
    for (int i = 0; i < 1000; ++i) {
      nodes.push_back(std::make_unique<Shield<TatasLock>>(key));
    }
    // Classes register lazily on first acquire; touch every node.
    for (auto& n : nodes) {
      n->acquire();
      EXPECT_TRUE(n->release());
    }
    // 1000 instances, ONE class-table slot.
    EXPECT_EQ(stats().classes_live, live_before + 1);
    EXPECT_EQ(nodes.front()->lockdep_class(), key.id());
    EXPECT_EQ(nodes.back()->lockdep_class(), key.id());
    EXPECT_TRUE(Graph::instance().is_shared(key.id()));
    EXPECT_STREQ(Graph::instance().label_of(key.id()), "list.node");
  }
  // Shield destruction must NOT retire the key's class...
  EXPECT_EQ(stats().classes_live, live_before + 1);
  // ...retiring the key itself returns the slot.
  key.retire();
  EXPECT_EQ(stats().classes_live, live_before);
}

TEST(LockdepKeys, CrossInstanceInversionIsReported) {
  PinnedEnv pin;
  LockClassKey tree_key("tree.node");
  LockClassKey list_key("list.node");
  // Two containers' worth of instances; the inversion happens across
  // DIFFERENT instances of each container.
  Shield<McsLock> tree1(tree_key), tree2(tree_key);
  Shield<McsLock> list1(list_key), list2(list_key);
  McsLock::QNode t1, t2, l1, l2;

  const auto inversions_before = stats().inversions;
  tree1.acquire(t1);
  list1.acquire(l1);  // edge tree.node -> list.node
  EXPECT_TRUE(list1.release(l1));
  EXPECT_TRUE(tree1.release(t1));

  list2.acquire(l2);
  tree2.acquire(t2);  // edge list.node -> tree.node: AB/BA, flagged HERE
  EXPECT_EQ(stats().inversions, inversions_before + 1);
  EXPECT_TRUE(tree2.release(t2));
  EXPECT_TRUE(list2.release(l2));

  // First-occurrence semantics hold for shared classes too: replaying
  // the reversed order through yet other instances adds no report.
  list1.acquire(l1);
  tree1.acquire(t1);
  EXPECT_EQ(stats().inversions, inversions_before + 1);
  EXPECT_TRUE(tree1.release(t1));
  EXPECT_TRUE(list1.release(l1));

  tree_key.retire();
  list_key.retire();
}

TEST(LockdepKeys, PerInstanceDefaultPreservedAndMixes) {
  PinnedEnv pin;
  LockClassKey key("keyed");
  Shield<TicketLock> keyed_a(key), keyed_b(key);
  Shield<TicketLock> plain_a, plain_b;
  keyed_a.acquire();
  keyed_b.acquire();  // same key while keyed_a held: no self-edge
  plain_a.acquire();
  plain_b.acquire();
  EXPECT_TRUE(plain_b.release());
  EXPECT_TRUE(plain_a.release());
  EXPECT_TRUE(keyed_b.release());
  EXPECT_TRUE(keyed_a.release());

  EXPECT_EQ(keyed_a.lockdep_class(), keyed_b.lockdep_class());
  EXPECT_NE(plain_a.lockdep_class(), plain_b.lockdep_class());
  EXPECT_NE(plain_a.lockdep_class(), keyed_a.lockdep_class());
  EXPECT_FALSE(Graph::instance().is_shared(plain_a.lockdep_class()));
  key.retire();
}

TEST(LockdepKeys, SameKeyNestingAddsNoEdgeOrReport) {
  PinnedEnv pin;
  LockClassKey key("node");
  Shield<TatasLock> a(key), b(key);
  const auto edges_before = stats().edges;
  const auto reports_before = stats().reports();
  a.acquire();
  b.acquire();  // hand-over-hand within one container
  EXPECT_TRUE(b.release());
  EXPECT_TRUE(a.release());
  b.acquire();
  a.acquire();  // the reverse: still intra-class, still silent
  EXPECT_TRUE(a.release());
  EXPECT_TRUE(b.release());
  EXPECT_EQ(stats().edges, edges_before);
  EXPECT_EQ(stats().reports(), reports_before);
  key.retire();
}

TEST(LockdepKeys, SharedEntriesSurviveConcurrentOwnership) {
  // Two threads hold different instances of one keyed class at the
  // same time; each then nests an unkeyed lock. With per-instance
  // validation semantics the "other" owner would look stale and the
  // held entry would be purged; shared classes must keep it and record
  // the edge.
  PinnedEnv pin;
  LockClassKey key("node");
  Shield<TicketLock> node1(key), node2(key);
  Shield<TicketLock> inner1, inner2;
  std::atomic<bool> both{false};
  std::atomic<int> holding{0};
  auto run = [&](Shield<TicketLock>& node, Shield<TicketLock>& inner) {
    node.acquire();
    holding.fetch_add(1);
    while (!both.load()) std::this_thread::yield();
    inner.acquire();  // edge key-class -> inner's class, from BOTH threads
    EXPECT_TRUE(inner.release());
    EXPECT_TRUE(node.release());
  };
  std::thread t1([&] { run(node1, inner1); });
  std::thread t2([&] { run(node2, inner2); });
  while (holding.load() != 2) std::this_thread::yield();
  both.store(true);
  t1.join();
  t2.join();
  ASSERT_NE(key.id(), lockdep::kInvalidClass);
  EXPECT_TRUE(Graph::instance().has_edge(key.id(), inner1.lockdep_class()));
  EXPECT_TRUE(Graph::instance().has_edge(key.id(), inner2.lockdep_class()));
  key.retire();
}

TEST(LockdepKeys, KeyedShieldWithExplicitPolicy) {
  PinnedEnv pin;
  LockClassKey key("node");
  Shield<TatasLock> s(ShieldPolicy::kPassThrough, key);
  s.acquire();
  EXPECT_TRUE(s.release());
  EXPECT_EQ(s.lockdep_class(), key.id());
  EXPECT_EQ(s.policy(), ShieldPolicy::kPassThrough);
  key.retire();
}
