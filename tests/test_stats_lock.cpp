// Unit tests for the StatsLock instrumentation wrapper.
#include <gtest/gtest.h>

#include <thread>

#include "core/clh.hpp"
#include "core/mcs.hpp"
#include "core/stats_lock.hpp"
#include "core/tas.hpp"
#include "core/ticket.hpp"
#include "lock_test_util.hpp"

using namespace resilock;
namespace rt = resilock::test;

TEST(StatsLock, CountsBalancedEpisodes) {
  StatsLock<TicketLockResilient> lock;
  for (int i = 0; i < 10; ++i) {
    lock.acquire();
    EXPECT_TRUE(lock.release());
  }
  const auto s = lock.snapshot();
  EXPECT_EQ(s.acquisitions, 10u);
  EXPECT_EQ(s.releases, 10u);
  EXPECT_EQ(s.detected_misuses, 0u);
}

TEST(StatsLock, CountsDetectedMisuses) {
  StatsLock<TatasLockResilient> lock;
  EXPECT_FALSE(lock.release());  // misuse
  lock.acquire();
  std::thread t([&] { EXPECT_FALSE(lock.release()); });  // misuse
  t.join();
  EXPECT_TRUE(lock.release());
  const auto s = lock.snapshot();
  EXPECT_EQ(s.detected_misuses, 2u);
  EXPECT_EQ(s.releases, 1u);
}

TEST(StatsLock, CountsTrylockOutcomes) {
  StatsLock<TatasLockResilient> lock;
  EXPECT_TRUE(lock.try_acquire());
  std::thread t([&] { EXPECT_FALSE(lock.try_acquire()); });
  t.join();
  EXPECT_TRUE(lock.release());
  const auto s = lock.snapshot();
  EXPECT_EQ(s.trylock_attempts, 2u);
  EXPECT_EQ(s.trylock_failures, 1u);
  EXPECT_EQ(s.acquisitions, 1u);
}

TEST(StatsLock, ContentionRatioUnderLoad) {
  StatsLock<TatasLockResilient> lock;
  std::uint64_t counter = 0;
  runtime::ThreadTeam::run(4, [&](std::uint32_t) {
    for (int i = 0; i < 2000; ++i) {
      lock.acquire();
      ++counter;
      ASSERT_TRUE(lock.release());
    }
  });
  EXPECT_EQ(counter, 8000u);
  const auto s = lock.snapshot();
  EXPECT_EQ(s.acquisitions, 8000u);
  EXPECT_EQ(s.releases, 8000u);
  EXPECT_LE(s.contention_ratio(), 1.0);
}

TEST(StatsLock, WrapsContextLocks) {
  StatsLock<McsLockResilient> lock;
  StatsLock<McsLockResilient>::Context ctx;
  lock.acquire(ctx);
  EXPECT_TRUE(lock.release(ctx));
  EXPECT_FALSE(lock.release(ctx));  // misuse via context
  const auto s = lock.snapshot();
  EXPECT_EQ(s.acquisitions, 1u);
  EXPECT_EQ(s.detected_misuses, 1u);
}

TEST(StatsLock, WrapsClhWithoutTrylock) {
  // CLH has no trylock: the contention probe must be compiled out, and
  // the wrapper still functions.
  StatsLock<ClhLockResilient> lock;
  StatsLock<ClhLockResilient>::Context ctx;
  for (int i = 0; i < 5; ++i) {
    lock.acquire(ctx);
    EXPECT_TRUE(lock.release(ctx));
  }
  const auto s = lock.snapshot();
  EXPECT_EQ(s.acquisitions, 5u);
  EXPECT_EQ(s.contended_acquisitions, 0u);
}

TEST(StatsLock, MutualExclusionPreserved) {
  StatsLock<TicketLockResilient> lock;
  rt::mutex_stress(lock, 4, 1000);
}

TEST(StatsLock, ResetClearsCounters) {
  StatsLock<TatasLockResilient> lock;
  lock.acquire();
  lock.release();
  lock.reset_stats();
  const auto s = lock.snapshot();
  EXPECT_EQ(s.acquisitions, 0u);
  EXPECT_EQ(s.releases, 0u);
}

TEST(StatsLock, SnapshotRatioEmpty) {
  StatsLock<TatasLockResilient> lock;
  EXPECT_DOUBLE_EQ(lock.snapshot().contention_ratio(), 0.0);
}
