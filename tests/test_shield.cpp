// Unit tests for the ownership-shield subsystem (src/shield/):
//   * HeldLockTable — fast path, spillover, and the two exemplar bugs
//     fixed (off-by-one at the fast-path boundary, overflow loss);
//   * the full policy matrix — {kSuppress, kAbort, kLogAndSuppress,
//     kPassThrough} x {unbalanced unlock, double unlock, non-owner
//     unlock, reentrant relock} — across three lock families (TAS,
//     Ticket, MCS: one plain word lock, one plain FIFO lock, one
//     context queue lock);
//   * telemetry snapshots, the §5 escape hatch, registry composites,
//     and the shield-vs-native verify matrix.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/lock_registry.hpp"
#include "core/mcs.hpp"
#include "core/stats_lock.hpp"
#include "core/tas.hpp"
#include "core/ticket.hpp"
#include "lock_test_util.hpp"
#include "shield/held_lock_table.hpp"
#include "shield/shield.hpp"
#include "verify/misuse_matrix.hpp"

using namespace resilock;
using shield::HeldLockTable;
using shield::MisuseKind;
using shield::ShieldPolicy;
namespace rt = resilock::test;

// Shield<L> must stay inside the lock vocabulary for every family.
static_assert(Lockable<Shield<TatasLock>>);
static_assert(Lockable<Shield<McsLock>>);
static_assert(PlainLock<Shield<TicketLockResilient>>);
static_assert(ContextLock<Shield<McsLockResilient>>);

// ---------------------------------------------------------------------
// HeldLockTable
// ---------------------------------------------------------------------

TEST(HeldLockTable, TracksDepthPerLock) {
  HeldLockTable t;
  int a = 0, b = 0;
  EXPECT_EQ(t.depth(&a), 0u);
  t.note_acquired(&a);
  t.note_acquired(&a);
  t.note_acquired(&b);
  EXPECT_EQ(t.depth(&a), 2u);
  EXPECT_EQ(t.depth(&b), 1u);
  EXPECT_EQ(t.held_count(), 2u);
  EXPECT_EQ(t.note_released(&a), 1);
  EXPECT_EQ(t.note_released(&a), 0);
  EXPECT_EQ(t.depth(&a), 0u);
  EXPECT_EQ(t.note_released(&a), HeldLockTable::kNotHeld);
  EXPECT_EQ(t.note_released(&b), 0);
  EXPECT_EQ(t.held_count(), 0u);
}

TEST(HeldLockTable, ExactlyFullFastPathStillReleases) {
  // The exemplar's DecrementRef guard (`lock_count < MAX_LOCKS`) refused
  // releases when the table was exactly full; ours must not.
  HeldLockTable t;
  int locks[HeldLockTable::kFastSlots];
  for (auto& l : locks) t.note_acquired(&l);
  EXPECT_EQ(t.held_count(), HeldLockTable::kFastSlots);
  EXPECT_TRUE(t.fast_path_only());
  for (auto& l : locks) EXPECT_EQ(t.note_released(&l), 0);
  EXPECT_EQ(t.held_count(), 0u);
}

TEST(HeldLockTable, OverflowSpillsInsteadOfDropping) {
  // The exemplar silently dropped entries past MAX_LOCKS (and wrote one
  // past the array end on the way). Here deep nests spill to the map
  // and every entry stays exact.
  HeldLockTable t;
  constexpr std::size_t kLocks = 3 * HeldLockTable::kFastSlots;
  std::vector<int> locks(kLocks);
  for (auto& l : locks) t.note_acquired(&l);
  EXPECT_EQ(t.held_count(), kLocks);
  EXPECT_FALSE(t.fast_path_only());
  for (auto& l : locks) EXPECT_EQ(t.depth(&l), 1u);
  // Release in reverse order; nothing may be reported missing.
  for (auto it = locks.rbegin(); it != locks.rend(); ++it) {
    EXPECT_EQ(t.note_released(&*it), 0);
  }
  EXPECT_EQ(t.held_count(), 0u);
  EXPECT_TRUE(t.fast_path_only());
}

TEST(HeldLockTable, SpillPromotionKeepsFastPathHot) {
  HeldLockTable t;
  std::vector<int> locks(HeldLockTable::kFastSlots + 2);
  for (auto& l : locks) t.note_acquired(&l);
  // Free a fast slot: one spilled entry must be promoted into it.
  EXPECT_EQ(t.note_released(&locks[0]), 0);
  EXPECT_EQ(t.note_released(&locks[1]), 0);
  EXPECT_TRUE(t.fast_path_only());
  for (std::size_t i = 2; i < locks.size(); ++i) {
    EXPECT_EQ(t.depth(&locks[i]), 1u) << i;
  }
}

// ---------------------------------------------------------------------
// Policy matrix: policy x misuse kind x {TAS, Ticket, MCS}.
// ---------------------------------------------------------------------

// Runs the four misuse scenarios under kSuppress (or kLogAndSuppress)
// and checks interception, counters, and that the base never corrupts.
template <typename Base>
void suppressing_policy_matrix(ShieldPolicy policy) {
  using S = Shield<Base>;

  {  // unbalanced unlock of a free lock
    S s(policy);
    context_of_t<S> ctx;
    EXPECT_FALSE(generic_release(s, ctx));
    const auto snap = s.snapshot();
    EXPECT_EQ(snap.count(MisuseKind::kUnbalancedUnlock), 1u);
    EXPECT_EQ(snap.suppressed, 1u);
    generic_acquire(s, ctx);  // still functional
    EXPECT_TRUE(generic_release(s, ctx));
  }

  {  // double unlock by the previous owner
    S s(policy);
    context_of_t<S> ctx;
    generic_acquire(s, ctx);
    EXPECT_TRUE(generic_release(s, ctx));
    EXPECT_FALSE(generic_release(s, ctx));
    EXPECT_EQ(s.snapshot().count(MisuseKind::kDoubleUnlock), 1u);
  }

  {  // unlock while another thread holds the lock
    S s(policy);
    std::atomic<bool> held{false}, done{false};
    std::thread t([&] {
      context_of_t<S> ctx;
      generic_acquire(s, ctx);
      held.store(true);
      while (!done.load()) std::this_thread::yield();
      EXPECT_TRUE(generic_release(s, ctx));
    });
    while (!held.load()) std::this_thread::yield();
    context_of_t<S> ctx;
    EXPECT_FALSE(generic_release(s, ctx));  // intercepted, owner unharmed
    EXPECT_EQ(s.snapshot().count(MisuseKind::kNonOwnerUnlock), 1u);
    done.store(true);
    t.join();
    generic_acquire(s, ctx);
    EXPECT_TRUE(generic_release(s, ctx));
  }

  {  // reentrant relock, absorbed as a depth bump (§3.9 remedy)
    S s(policy);
    context_of_t<S> ctx;
    generic_acquire(s, ctx);
    generic_acquire(s, ctx);  // would self-deadlock unshielded
    EXPECT_EQ(s.held_depth(), 2u);
    const auto snap = s.snapshot();
    EXPECT_EQ(snap.count(MisuseKind::kReentrantRelock), 1u);
    EXPECT_EQ(snap.reentrant_absorbed, 1u);
    EXPECT_TRUE(generic_release(s, ctx));  // absorbed
    EXPECT_TRUE(generic_release(s, ctx));  // reaches the base
    EXPECT_EQ(s.held_depth(), 0u);
    generic_acquire(s, ctx);
    EXPECT_TRUE(generic_release(s, ctx));
  }
}

TEST(ShieldPolicyMatrix, SuppressTas) {
  suppressing_policy_matrix<TatasLock>(ShieldPolicy::kSuppress);
  suppressing_policy_matrix<TatasLockResilient>(ShieldPolicy::kSuppress);
}
TEST(ShieldPolicyMatrix, SuppressTicket) {
  suppressing_policy_matrix<TicketLock>(ShieldPolicy::kSuppress);
  suppressing_policy_matrix<TicketLockResilient>(ShieldPolicy::kSuppress);
}
TEST(ShieldPolicyMatrix, SuppressMcs) {
  suppressing_policy_matrix<McsLock>(ShieldPolicy::kSuppress);
  suppressing_policy_matrix<McsLockResilient>(ShieldPolicy::kSuppress);
}

TEST(ShieldPolicyMatrix, LogAndSuppressTas) {
  suppressing_policy_matrix<TatasLock>(ShieldPolicy::kLogAndSuppress);
}
TEST(ShieldPolicyMatrix, LogAndSuppressTicket) {
  suppressing_policy_matrix<TicketLock>(ShieldPolicy::kLogAndSuppress);
}
TEST(ShieldPolicyMatrix, LogAndSuppressMcs) {
  suppressing_policy_matrix<McsLock>(ShieldPolicy::kLogAndSuppress);
}

TEST(ShieldPolicyMatrix, LogPolicyWritesDiagnostic) {
  Shield<TatasLock> s(ShieldPolicy::kLogAndSuppress);
  ::testing::internal::CaptureStderr();
  EXPECT_FALSE(s.release());
  const std::string err = ::testing::internal::GetCapturedStderr();
  EXPECT_NE(err.find("unbalanced-unlock"), std::string::npos) << err;
}

// kAbort: every misuse kind dies with a diagnostic. Death tests fork,
// so each scenario builds its whole world inside the statement.
template <typename Base>
void abort_policy_matrix() {
  using S = Shield<Base>;
  EXPECT_DEATH(
      {
        S s(ShieldPolicy::kAbort);
        context_of_t<S> ctx;
        generic_release(s, ctx);  // unbalanced unlock
      },
      "unbalanced-unlock");
  EXPECT_DEATH(
      {
        S s(ShieldPolicy::kAbort);
        context_of_t<S> ctx;
        generic_acquire(s, ctx);
        generic_release(s, ctx);
        generic_release(s, ctx);  // double unlock
      },
      "double-unlock");
  EXPECT_DEATH(
      {
        S s(ShieldPolicy::kAbort);
        std::atomic<bool> held{false};
        std::thread t([&] {
          context_of_t<S> ctx;
          generic_acquire(s, ctx);
          held.store(true);
          for (;;) std::this_thread::yield();  // the abort kills us
        });
        while (!held.load()) std::this_thread::yield();
        context_of_t<S> ctx;
        generic_release(s, ctx);  // non-owner unlock
      },
      "non-owner-unlock");
  EXPECT_DEATH(
      {
        S s(ShieldPolicy::kAbort);
        context_of_t<S> ctx;
        generic_acquire(s, ctx);
        generic_acquire(s, ctx);  // reentrant relock
      },
      "reentrant-relock");
}

TEST(ShieldPolicyMatrixDeathTest, AbortTas) { abort_policy_matrix<TatasLock>(); }
TEST(ShieldPolicyMatrixDeathTest, AbortTicket) {
  abort_policy_matrix<TicketLock>();
}
TEST(ShieldPolicyMatrixDeathTest, AbortMcs) { abort_policy_matrix<McsLock>(); }

// kPassThrough over a RESILIENT base: the shield counts, the base's own
// in-protocol check still refuses — observable behavior matches the
// bare resilient lock.
template <typename Base>
void passthrough_over_resilient_matrix() {
  using S = Shield<Base>;

  {  // unbalanced + double unlock reach the base and are refused there
    S s(ShieldPolicy::kPassThrough);
    context_of_t<S> ctx;
    EXPECT_FALSE(generic_release(s, ctx));
    generic_acquire(s, ctx);
    EXPECT_TRUE(generic_release(s, ctx));
    EXPECT_FALSE(generic_release(s, ctx));
    const auto snap = s.snapshot();
    EXPECT_EQ(snap.count(MisuseKind::kUnbalancedUnlock), 1u);
    EXPECT_EQ(snap.count(MisuseKind::kDoubleUnlock), 1u);
    EXPECT_EQ(snap.passed_through, 2u);
    EXPECT_EQ(snap.suppressed, 0u);
  }

  {  // reentrant relock probed via trylock: the base's CAS refuses
    S s(ShieldPolicy::kPassThrough);
    context_of_t<S> ctx;
    generic_acquire(s, ctx);
    EXPECT_FALSE(generic_try_acquire(s, ctx));
    const auto snap = s.snapshot();
    EXPECT_EQ(snap.count(MisuseKind::kReentrantRelock), 1u);
    EXPECT_EQ(snap.reentrant_absorbed, 0u);
    EXPECT_TRUE(generic_release(s, ctx));
  }
}

TEST(ShieldPolicyMatrix, PassThroughTas) {
  passthrough_over_resilient_matrix<TatasLockResilient>();
}
TEST(ShieldPolicyMatrix, PassThroughTicket) {
  passthrough_over_resilient_matrix<TicketLockResilient>();
}
TEST(ShieldPolicyMatrix, PassThroughMcs) {
  passthrough_over_resilient_matrix<McsLockResilient>();
}

TEST(ShieldPolicyMatrix, PassThroughOverOriginalIsFaithful) {
  // Over an ORIGINAL base, pass-through hands the misuse to the
  // protocol untouched: a non-owner release of a TAS lock really frees
  // the word (the paper's §3.1 consequence), and the shield only keeps
  // the tally.
  Shield<TatasLock> s(ShieldPolicy::kPassThrough);
  std::atomic<bool> held{false}, done{false};
  std::thread t([&] {
    s.acquire();
    held.store(true);
    while (!done.load()) std::this_thread::yield();
    s.release();
    done.store(false);
  });
  while (!held.load()) std::this_thread::yield();
  EXPECT_TRUE(s.release());  // original protocol: blind store, "succeeds"
  EXPECT_FALSE(s.base().is_locked());  // corruption passed through
  EXPECT_EQ(s.snapshot().count(MisuseKind::kNonOwnerUnlock), 1u);
  EXPECT_EQ(s.snapshot().passed_through, 1u);
  done.store(true);
  t.join();
}

// ---------------------------------------------------------------------
// Policy engine configuration.
// ---------------------------------------------------------------------

TEST(ShieldPolicyEngine, RuntimeDefaultIsPickedUpAtConstruction) {
  shield::ShieldPolicyGuard pin(ShieldPolicy::kPassThrough);
  Shield<TatasLockResilient> s;
  EXPECT_EQ(s.policy(), ShieldPolicy::kPassThrough);
}

TEST(ShieldPolicyEngine, PolicyGuardRestoresOnScopeExit) {
  const ShieldPolicy before = shield::default_shield_policy();
  {
    shield::ShieldPolicyGuard pin(ShieldPolicy::kAbort);
    EXPECT_EQ(shield::default_shield_policy(), ShieldPolicy::kAbort);
  }
  EXPECT_EQ(shield::default_shield_policy(), before);
}

TEST(ShieldPolicyEngine, PerInstanceOverrideAtRuntime) {
  Shield<TatasLockResilient> s(ShieldPolicy::kSuppress);
  EXPECT_FALSE(s.release());
  EXPECT_EQ(s.snapshot().suppressed, 1u);
  s.set_policy(ShieldPolicy::kPassThrough);
  EXPECT_FALSE(s.release());  // now the base's check answers
  EXPECT_EQ(s.snapshot().passed_through, 1u);
}

TEST(ShieldPolicyEngine, PolicyNames) {
  using shield::policy_from_name;
  EXPECT_EQ(policy_from_name("suppress"), ShieldPolicy::kSuppress);
  EXPECT_EQ(policy_from_name("abort"), ShieldPolicy::kAbort);
  EXPECT_EQ(policy_from_name("log"), ShieldPolicy::kLogAndSuppress);
  EXPECT_EQ(policy_from_name("passthrough"), ShieldPolicy::kPassThrough);
  EXPECT_FALSE(policy_from_name("bogus").has_value());
}

// ---------------------------------------------------------------------
// Semantics under load, escape hatch, composition.
// ---------------------------------------------------------------------

TEST(Shield, MutualExclusionPreserved) {
  Shield<TicketLock> plain;
  rt::mutex_stress(plain, 4, 1500);
  Shield<McsLockResilient> ctxlock;
  rt::mutex_stress(ctxlock, 4, 1500);
}

TEST(Shield, ShieldedOriginalSurvivesConcurrentMisuse) {
  // The headline property: an ORIGINAL protocol behind the shield keeps
  // mutual exclusion while a rogue thread hammers unbalanced releases.
  Shield<TicketLock> s(ShieldPolicy::kSuppress);
  verify::MutexChecker chk;
  std::uint64_t counter = 0;
  runtime::ThreadTeam::run(4, [&](std::uint32_t tid) {
    if (tid == 3) {
      for (int i = 0; i < 200; ++i) {
        EXPECT_FALSE(s.release());
        std::this_thread::yield();
      }
      return;
    }
    for (int i = 0; i < 1000; ++i) {
      s.acquire();
      chk.enter();
      ++counter;
      chk.exit();
      ASSERT_TRUE(s.release());
    }
  });
  EXPECT_EQ(chk.max_simultaneous(), 1);
  EXPECT_EQ(counter, 3000u);
  // Concurrent rogue releases classify as non-owner (someone held the
  // lock) or unbalanced (it was free); either way the tally is nonzero.
  EXPECT_GT(s.snapshot().total_misuses(), 0u);
}

TEST(Shield, EscapeHatchDisablesInterception) {
  // §5: with checks off, one thread acquires and another releases, and
  // the shield stays out of the way entirely.
  Shield<TatasLockResilient> s(ShieldPolicy::kAbort);  // loudest policy
  s.acquire();
  {
    MisuseCheckGuard off(false);
    std::thread t([&] { EXPECT_TRUE(s.release()); });
    t.join();
  }
  EXPECT_FALSE(s.base().is_locked());
  EXPECT_EQ(s.snapshot().total_misuses(), 0u);  // nothing was flagged
  // The acquiring thread's table entry went stale when the lock left it
  // cross-thread; the next acquire must self-heal, not flag a relock
  // (which would abort under this policy).
  s.acquire();
  EXPECT_TRUE(s.release());
  EXPECT_EQ(s.snapshot().total_misuses(), 0u);
}

TEST(Shield, StaleEntryCannotReleaseAnotherThreadsLock) {
  // After a §5 hand-off (cross-thread release with checks disabled) the
  // original acquirer's table entry is stale. With checks back on, its
  // erroneous release() must NOT free the lock a third thread now
  // holds — release() validates the entry against the owner tag.
  Shield<TatasLockResilient> s(ShieldPolicy::kSuppress);
  s.acquire();
  {
    MisuseCheckGuard off(false);
    std::thread t([&] { EXPECT_TRUE(s.release()); });  // sanctioned
    t.join();
  }
  std::atomic<bool> held{false}, done{false};
  std::thread holder([&] {
    s.acquire();
    held.store(true);
    while (!done.load()) std::this_thread::yield();
    EXPECT_TRUE(s.release());
  });
  while (!held.load()) std::this_thread::yield();
  EXPECT_FALSE(s.release());  // stale entry: flagged, owner unharmed
  EXPECT_TRUE(s.base().is_locked());
  EXPECT_EQ(s.snapshot().count(MisuseKind::kNonOwnerUnlock), 1u);
  done.store(true);
  holder.join();
}

TEST(Shield, AbsorbedRelockReleasesBaseWithAcquiringContext) {
  // A relock absorbed with a *different* context must not poison the
  // final base release: whatever context the caller passes, the base is
  // released with the one it was acquired with (a foreign MCS qnode
  // would self-deadlock).
  Shield<McsLockResilient> s(ShieldPolicy::kSuppress);
  Shield<McsLockResilient>::Context c1, c2;
  s.acquire(c1);
  s.acquire(c2);  // absorbed; c2 never reaches the base
  EXPECT_EQ(s.held_depth(), 2u);
  EXPECT_TRUE(s.release(c1));  // absorbed
  EXPECT_TRUE(s.release(c2));  // must release the base via c1, not hang
  EXPECT_EQ(s.held_depth(), 0u);
  s.acquire(c2);  // still functional with either context
  EXPECT_TRUE(s.release(c2));
}

TEST(Shield, ComposesWithStatsLock) {
  // Wrappers stack: stats outside, shield inside, protocol at the core.
  StatsLock<Shield<TicketLock>> s;
  s.acquire();
  EXPECT_TRUE(s.release());
  EXPECT_FALSE(s.release());  // shield refuses; stats counts a misuse
  EXPECT_EQ(s.snapshot().detected_misuses, 1u);
}

TEST(Shield, TrylockSemantics) {
  Shield<TatasLockResilient> s;
  EXPECT_TRUE(s.try_acquire());
  std::thread t([&] { EXPECT_FALSE(s.try_acquire()); });
  t.join();
  EXPECT_TRUE(s.release());
}

TEST(Shield, DeepRecursionBeyondFastPath) {
  // One shield absorbed past the fast-path size: the spillover keeps
  // the depth exact (no false unbalanced report at any depth).
  Shield<TatasLock> s(ShieldPolicy::kSuppress);
  constexpr std::uint32_t kDepth = 3 * HeldLockTable::kFastSlots;
  for (std::uint32_t i = 0; i < kDepth; ++i) s.acquire();
  EXPECT_EQ(s.held_depth(), kDepth);
  for (std::uint32_t i = 0; i < kDepth; ++i) EXPECT_TRUE(s.release());
  EXPECT_EQ(s.held_depth(), 0u);
  EXPECT_FALSE(s.release());  // one more is a genuine misuse again
}

// ---------------------------------------------------------------------
// Registry composites and interposer routing.
// ---------------------------------------------------------------------

TEST(ShieldRegistry, CompositeNamesRegisteredForEveryBase) {
  for (const auto& name : lock_names()) {
    if (is_shielded_name(name)) continue;
    EXPECT_TRUE(is_lock_name(shielded_name(name))) << name;
  }
}

TEST(ShieldRegistry, NameHelpersRoundTrip) {
  EXPECT_EQ(shielded_name("MCS"), "shield<MCS>");
  EXPECT_TRUE(is_shielded_name("shield<MCS>"));
  EXPECT_EQ(shield_base_name("shield<MCS>"), "MCS");
  EXPECT_FALSE(is_shielded_name("MCS"));
  EXPECT_FALSE(is_shielded_name("shield<>"));
  EXPECT_TRUE(shield_base_name("Ticket").empty());
}

TEST(ShieldRegistry, ShieldedOriginalDetectsThroughTypeErasure) {
  // The registry's whole point: protection for locks with no bespoke
  // resilient variant — the ORIGINAL flavor behind shield<> detects.
  for (const char* name : {"shield<TAS>", "shield<Ticket>", "shield<MCS>",
                           "shield<CLH>", "shield<HMCS>"}) {
    auto lock = make_lock(name, kOriginal);
    EXPECT_FALSE(lock->release()) << name;  // misuse on a free lock
    lock->acquire();
    EXPECT_TRUE(lock->release()) << name;
  }
}

// ---------------------------------------------------------------------
// Shield-vs-native verify matrix.
// ---------------------------------------------------------------------

TEST(ShieldMatrix, ShieldedOriginalMatchesNativeResilient) {
  const auto rows = verify::run_shield_matrix({"TAS", "Ticket", "MCS"});
  ASSERT_EQ(rows.size(), 3u);
  for (const auto& row : rows) {
    for (int i = 0; i < 4; ++i) {
      const auto& cell = row.shielded[i];
      if (!cell.applicable) continue;
      EXPECT_TRUE(cell.detected) << row.lock << " scenario " << i;
      EXPECT_TRUE(cell.mutex_preserved) << row.lock << " scenario " << i;
      EXPECT_TRUE(cell.functional_after) << row.lock << " scenario " << i;
    }
    EXPECT_TRUE(row.shield_matches_native()) << row.lock;
  }
}
