// Unit + scenario tests for the unified response engine
// (src/response/):
//   * the RESILOCK_POLICY rule parser — grammar, presets, rejection of
//     malformed specs;
//   * decide() — first-match-wins ordering, condition gating, fallback
//     compatibility with the legacy static policies;
//   * engine-routed Shield verdicts (default-policy shields follow the
//     rules, explicit policies stay pinned) including the abort trap;
//   * the verify-layer escalation matrix across TAS/Ticket/MCS and the
//     legacy compatibility mapping.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <thread>

#include "core/tas.hpp"
#include "core/ticket.hpp"
#include "lockdep/lockdep.hpp"
#include "response/response.hpp"
#include "shield/shield.hpp"
#include "verify/escalation_matrix.hpp"

using namespace resilock;
using response::Action;
using response::Condition;
using response::EventContext;
using response::parse_rules;
using response::ResponseEngine;
using response::ResponseEvent;
using response::ResponseRulesGuard;
using response::Rule;
using shield::ShieldPolicy;

namespace {

EventContext contended_ctx(std::uint32_t waiters = 1) {
  EventContext c;
  c.waiters = waiters;
  c.contended = waiters > 0;
  return c;
}

}  // namespace

// ---------------------------------------------------------------------
// Parser.
// ---------------------------------------------------------------------

TEST(ResponseParser, SingleRule) {
  const auto rules = parse_rules("misuse@contended=log");
  ASSERT_TRUE(rules.has_value());
  ASSERT_EQ(rules->size(), 1u);
  // "misuse" covers the four exclusive ownership kinds AND the rw tail.
  EXPECT_EQ((*rules)[0].events, 0x1CF);
  EXPECT_EQ((*rules)[0].cond, Condition::kContended);
  EXPECT_EQ((*rules)[0].action, Action::kLog);
}

TEST(ResponseParser, EventGroupsAndAliases) {
  const auto rules = parse_rules(
      "unbalanced-unlock|double-unlock=passthrough;"
      "lockdep=abort;*=suppress;inversion|cycle@waiters=abort");
  ASSERT_TRUE(rules.has_value());
  ASSERT_EQ(rules->size(), 4u);
  EXPECT_EQ((*rules)[0].events, 0x03);
  EXPECT_EQ((*rules)[1].events, 0x30);
  EXPECT_EQ((*rules)[2].events, 0x1FF);
  EXPECT_EQ((*rules)[3].events, 0x30);
  EXPECT_EQ((*rules)[3].cond, Condition::kContended);  // waiters alias
}

TEST(ResponseParser, RwEventTokens) {
  const auto rules = parse_rules(
      "rw=log;unbalanced-read-unlock=suppress;"
      "rw-mode-mismatch|non-owner-write-unlock=abort;"
      "read-unlock|mode-mismatch=log");
  ASSERT_TRUE(rules.has_value());
  ASSERT_EQ(rules->size(), 4u);
  EXPECT_EQ((*rules)[0].events, 0x1C0);  // the three rw kinds
  EXPECT_EQ((*rules)[1].events, 0x040);
  EXPECT_EQ((*rules)[2].events, 0x180);
  EXPECT_EQ((*rules)[3].events, 0x0C0);  // short aliases
}

TEST(ResponseParser, WaitersThresholdCondition) {
  const auto rules =
      parse_rules("misuse@waiters>=3=abort;lockdep@waiters>=10=abort");
  ASSERT_TRUE(rules.has_value());
  ASSERT_EQ(rules->size(), 2u);
  EXPECT_EQ((*rules)[0].cond, Condition::kWaitersAtLeast);
  EXPECT_EQ((*rules)[0].threshold, 3u);
  EXPECT_EQ((*rules)[1].threshold, 10u);
  // Malformed thresholds poison the spec.
  EXPECT_FALSE(parse_rules("misuse@waiters>==log").has_value());
  EXPECT_FALSE(parse_rules("misuse@waiters>=x=log").has_value());
  EXPECT_FALSE(parse_rules("misuse@waiters>=0=log").has_value());
  EXPECT_FALSE(parse_rules("misuse@waiters>=-1=log").has_value());
}

TEST(ResponseParser, ClassScopeCondition) {
  const auto rules = parse_rules(
      "inversion@class=hmcs.level1=abort;misuse@class=app.cache=log");
  ASSERT_TRUE(rules.has_value());
  ASSERT_EQ(rules->size(), 2u);
  EXPECT_EQ((*rules)[0].cond, Condition::kClassScope);
  EXPECT_EQ((*rules)[0].cls_name, "hmcs.level1");
  EXPECT_EQ((*rules)[0].cls, resilock::response::kNoClass);  // unresolved
  EXPECT_EQ((*rules)[0].action, Action::kAbort);
  EXPECT_EQ((*rules)[1].cls_name, "app.cache");
  // An empty scope poisons the spec.
  EXPECT_FALSE(parse_rules("inversion@class==abort").has_value());

  // Matching: unresolved scopes compare labels; resolved scopes
  // require the id AND a corroborating label (ids recycle — a recycled
  // id alone must never re-trigger a pinned rule). An event with no
  // attribution matches neither.
  EventContext ctx;
  EXPECT_FALSE((*rules)[0].matches(ResponseEvent::kOrderInversion, ctx));
  ctx.cls = 11;
  ctx.cls_label = "hmcs.level1";
  EXPECT_TRUE((*rules)[0].matches(ResponseEvent::kOrderInversion, ctx));
  Rule pinned = (*rules)[0];
  pinned.cls = 12;  // resolved to a different id: label no longer enough
  EXPECT_FALSE(pinned.matches(ResponseEvent::kOrderInversion, ctx));
  ctx.cls = 12;
  EXPECT_TRUE(pinned.matches(ResponseEvent::kOrderInversion, ctx));
  ctx.cls_label = "recycled.tenant";  // id reused by an unrelated class
  EXPECT_FALSE(pinned.matches(ResponseEvent::kOrderInversion, ctx));
}

TEST(ResponseParser, CompoundConditionsParse) {
  const auto rules =
      parse_rules("misuse@class=app.db@waiters>=2=abort;lockdep=log");
  ASSERT_TRUE(rules.has_value());
  ASSERT_EQ(rules->size(), 2u);
  // First clause lands in the rule's flat fields, the rest in extra.
  EXPECT_EQ((*rules)[0].cond, Condition::kClassScope);
  EXPECT_EQ((*rules)[0].cls_name, "app.db");
  ASSERT_EQ((*rules)[0].extra.size(), 1u);
  EXPECT_EQ((*rules)[0].extra[0].cond, Condition::kWaitersAtLeast);
  EXPECT_EQ((*rules)[0].extra[0].threshold, 2u);
  EXPECT_TRUE((*rules)[1].extra.empty());

  // Three clauses chain too; order is preserved.
  const auto three = parse_rules(
      "misuse@contended@class=app.db@waiters>=5=abort");
  ASSERT_TRUE(three.has_value());
  EXPECT_EQ((*three)[0].cond, Condition::kContended);
  ASSERT_EQ((*three)[0].extra.size(), 2u);
  EXPECT_EQ((*three)[0].extra[0].cond, Condition::kClassScope);
  EXPECT_EQ((*three)[0].extra[1].cond, Condition::kWaitersAtLeast);

  // A malformed clause anywhere in the chain poisons the spec.
  EXPECT_FALSE(parse_rules("misuse@class=app.db@@waiters>=2=log")
                   .has_value());
  EXPECT_FALSE(parse_rules("misuse@class=app.db@sideways=log")
                   .has_value());
  EXPECT_FALSE(parse_rules("misuse@class=app.db@waiters>=0=log")
                   .has_value());
}

TEST(ResponseRule, CompoundConditionsAndTogether) {
  const auto rules =
      parse_rules("misuse@class=app.db@waiters>=2=abort");
  ASSERT_TRUE(rules.has_value());
  const Rule& r = (*rules)[0];
  EventContext ctx;
  ctx.cls_label = "app.db";
  ctx.waiters = 1;
  ctx.contended = true;
  EXPECT_FALSE(r.matches(ResponseEvent::kDoubleUnlock, ctx));  // few waiters
  ctx.waiters = 2;
  EXPECT_TRUE(r.matches(ResponseEvent::kDoubleUnlock, ctx));
  ctx.cls_label = "app.cache";  // wrong class, enough waiters
  EXPECT_FALSE(r.matches(ResponseEvent::kDoubleUnlock, ctx));

  // The same clauses in the opposite order gate identically.
  const auto flipped =
      parse_rules("misuse@waiters>=2@class=app.db=abort");
  ASSERT_TRUE(flipped.has_value());
  ctx.cls_label = "app.db";
  for (std::uint32_t w : {1u, 2u, 5u}) {
    ctx.waiters = w;
    EXPECT_EQ((*rules)[0].matches(ResponseEvent::kDoubleUnlock, ctx),
              (*flipped)[0].matches(ResponseEvent::kDoubleUnlock, ctx));
  }
}

TEST(ResponseEngineConfig, CompoundClassClauseResolvesAtInstall) {
  // Register the class first, so install() can pin the live id into
  // an EXTRA clause (not just the flat first clause).
  lockdep::LockdepModeGuard mode(lockdep::LockdepMode::kReport);
  shield::ShieldPolicyGuard policy(ShieldPolicy::kSuppress);
  Shield<TasLock> lock;
  lock.set_lockdep_label("response.compound.pin");
  lock.acquire();
  lock.release();
  const auto cls =
      lockdep::Graph::instance().find_class("response.compound.pin");
  ASSERT_NE(cls, lockdep::kInvalidClass);

  ResponseRulesGuard rules(
      "misuse@waiters>=2@class=response.compound.pin=abort");
  const auto installed = ResponseEngine::instance().rules();
  ASSERT_EQ(installed.size(), 1u);
  ASSERT_EQ(installed[0].extra.size(), 1u);
  EXPECT_EQ(installed[0].extra[0].cond, Condition::kClassScope);
  EXPECT_EQ(installed[0].extra[0].cls, cls);
}

TEST(ResponseParser, WhitespaceTolerated) {
  const auto rules =
      parse_rules(" misuse @ uncontended = passthrough ; lockdep = log ");
  ASSERT_TRUE(rules.has_value());
  EXPECT_EQ(rules->size(), 2u);
  EXPECT_EQ((*rules)[0].cond, Condition::kUncontended);
}

TEST(ResponseParser, PresetsAndEmpty) {
  const auto adaptive = parse_rules("adaptive");
  ASSERT_TRUE(adaptive.has_value());
  EXPECT_GE(adaptive->size(), 4u);
  EXPECT_EQ(parse_rules("legacy")->size(), 0u);
  EXPECT_EQ(parse_rules("")->size(), 0u);
  // The spelled-out adaptive spec parses to the same ladder.
  EXPECT_EQ(parse_rules(response::adaptive_policy_spec())->size(),
            adaptive->size());
}

TEST(ResponseParser, MalformedSpecsRejectedWhole) {
  EXPECT_FALSE(parse_rules("misuse=explode").has_value());   // bad action
  EXPECT_FALSE(parse_rules("bogus=log").has_value());        // bad event
  EXPECT_FALSE(parse_rules("misuse@sideways=log").has_value());  // bad cond
  EXPECT_FALSE(parse_rules("misuse").has_value());           // no '='
  // One bad rule poisons the whole spec (all-or-nothing).
  EXPECT_FALSE(parse_rules("misuse=log;bogus=abort").has_value());
}

TEST(ResponseRule, WaitersThresholdGating) {
  Rule r;
  r.cond = Condition::kWaitersAtLeast;
  r.threshold = 3;
  EXPECT_FALSE(r.matches(ResponseEvent::kDoubleUnlock, contended_ctx(2)));
  EXPECT_TRUE(r.matches(ResponseEvent::kDoubleUnlock, contended_ctx(3)));
  EXPECT_TRUE(r.matches(ResponseEvent::kDoubleUnlock, contended_ctx(7)));
}

TEST(ResponseEngineDecide, ThresholdEscalatesAboveContended) {
  // A three-tier ladder: quiet -> log, some waiters -> log, a crowd ->
  // abort. The threshold rule must outrank the plain contended rule by
  // ordering, not by specificity magic.
  ResponseRulesGuard rules(
      "misuse@waiters>=4=abort;misuse@contended=log;misuse=suppress");
  auto& e = ResponseEngine::instance();
  EXPECT_EQ(e.decide(ResponseEvent::kUnbalancedUnlock, EventContext{},
                     Action::kPassthrough),
            Action::kSuppress);
  EXPECT_EQ(e.decide(ResponseEvent::kUnbalancedUnlock, contended_ctx(1),
                     Action::kPassthrough),
            Action::kLog);
  EXPECT_EQ(e.decide(ResponseEvent::kUnbalancedUnlock, contended_ctx(4),
                     Action::kPassthrough),
            Action::kAbort);
}

TEST(ResponseRule, ConditionGating) {
  Rule r;
  r.events = 0x0F;
  r.cond = Condition::kContended;
  EXPECT_TRUE(r.matches(ResponseEvent::kDoubleUnlock, contended_ctx()));
  EXPECT_FALSE(r.matches(ResponseEvent::kDoubleUnlock, EventContext{}));
  EXPECT_FALSE(r.matches(ResponseEvent::kOrderInversion, contended_ctx()));
  Rule incycle;
  incycle.cond = Condition::kInCycle;
  EventContext flagged;
  flagged.in_flagged_cycle = true;
  EXPECT_TRUE(incycle.matches(ResponseEvent::kNonOwnerUnlock, flagged));
  EXPECT_FALSE(incycle.matches(ResponseEvent::kNonOwnerUnlock,
                               EventContext{}));
}

// ---------------------------------------------------------------------
// decide(): ordering, fallback, stats.
// ---------------------------------------------------------------------

TEST(ResponseEngineDecide, NoRulesReturnsFallback) {
  ResponseRulesGuard none("");
  auto& e = ResponseEngine::instance();
  EXPECT_FALSE(e.has_rules());
  for (const Action fb : {Action::kPassthrough, Action::kSuppress,
                          Action::kLog, Action::kAbort}) {
    EXPECT_EQ(e.decide(ResponseEvent::kUnbalancedUnlock, EventContext{}, fb),
              fb);
    EXPECT_EQ(e.decide(ResponseEvent::kDeadlockCycle, contended_ctx(), fb),
              fb);
  }
}

TEST(ResponseEngineDecide, FirstMatchWins) {
  ResponseRulesGuard rules("misuse@contended=abort;misuse=log");
  auto& e = ResponseEngine::instance();
  EXPECT_EQ(e.decide(ResponseEvent::kDoubleUnlock, contended_ctx(),
                     Action::kSuppress),
            Action::kAbort);
  EXPECT_EQ(e.decide(ResponseEvent::kDoubleUnlock, EventContext{},
                     Action::kSuppress),
            Action::kLog);
  // Unmatched event kind falls through to the fallback.
  EXPECT_EQ(e.decide(ResponseEvent::kOrderInversion, contended_ctx(),
                     Action::kSuppress),
            Action::kSuppress);
}

TEST(ResponseEngineDecide, StatsCountDecisions) {
  ResponseRulesGuard rules("misuse=passthrough");
  auto& e = ResponseEngine::instance();
  const auto before = e.stats();
  e.decide(ResponseEvent::kDoubleUnlock, EventContext{}, Action::kSuppress);
  e.decide(ResponseEvent::kOrderInversion, EventContext{}, Action::kLog);
  const auto after = e.stats();
  EXPECT_EQ(after.decisions, before.decisions + 2);
  EXPECT_EQ(after.rule_hits, before.rule_hits + 1);
  EXPECT_EQ(after.by_action[static_cast<int>(Action::kPassthrough)],
            before.by_action[static_cast<int>(Action::kPassthrough)] + 1);
  EXPECT_EQ(after.by_event[static_cast<int>(ResponseEvent::kDoubleUnlock)],
            before.by_event[static_cast<int>(ResponseEvent::kDoubleUnlock)] +
                1);
}

TEST(ResponseEngineDecide, LogRateLimitDegradesToSuppress) {
  ResponseRulesGuard rules("misuse=log");
  auto& e = ResponseEngine::instance();
  response::LogRateLimitGuard limit(1);  // burst 1, refill 1/sec
  const auto before = e.stats();
  int logged = 0, suppressed = 0;
  for (int i = 0; i < 5; ++i) {
    const Action a = e.decide(ResponseEvent::kUnbalancedUnlock,
                              EventContext{}, Action::kPassthrough);
    if (a == Action::kLog) ++logged;
    if (a == Action::kSuppress) ++suppressed;
  }
  // The first verdict spends the burst token; later ones degrade
  // unless a slow run refilled the bucket — never to passthrough.
  EXPECT_GE(logged, 1);
  EXPECT_GE(suppressed, 1);
  EXPECT_EQ(logged + suppressed, 5);
  const auto after = e.stats();
  EXPECT_EQ(after.log_rate_limited,
            before.log_rate_limited + static_cast<std::uint64_t>(suppressed));
}

TEST(ResponseEngineDecide, RateLimitBucketsArePerEventKind) {
  ResponseRulesGuard rules("*=log");
  auto& e = ResponseEngine::instance();
  response::LogRateLimitGuard limit(1);
  // One kind exhausting its bucket must not silence another kind.
  EXPECT_EQ(e.decide(ResponseEvent::kUnbalancedUnlock, EventContext{},
                     Action::kSuppress),
            Action::kLog);
  EXPECT_EQ(e.decide(ResponseEvent::kUnbalancedUnlock, EventContext{},
                     Action::kSuppress),
            Action::kSuppress);  // bucket drained
  EXPECT_EQ(e.decide(ResponseEvent::kNonOwnerUnlock, EventContext{},
                     Action::kSuppress),
            Action::kLog);  // separate bucket, still full
}

TEST(ResponseEngineDecide, RateLimitOffByDefaultAndRestoredByGuard) {
  auto& e = ResponseEngine::instance();
  const std::uint32_t outer = e.log_rate_limit();
  {
    response::LogRateLimitGuard limit(7);
    EXPECT_EQ(e.log_rate_limit(), 7u);
  }
  EXPECT_EQ(e.log_rate_limit(), outer);
}

TEST(ResponseEngineConfig, GuardRestoresPreviousRules) {
  ResponseRulesGuard outer("misuse=log");
  {
    ResponseRulesGuard inner("adaptive");
    EXPECT_GE(ResponseEngine::instance().rules().size(), 4u);
  }
  const auto restored = ResponseEngine::instance().rules();
  ASSERT_EQ(restored.size(), 1u);
  EXPECT_EQ(restored[0].action, Action::kLog);
}

TEST(ResponseEngineConfig, MalformedConfigureRejectedUntouched) {
  ResponseRulesGuard base("misuse=log");
  EXPECT_FALSE(ResponseEngine::instance().configure("nope=never"));
  ASSERT_EQ(ResponseEngine::instance().rules().size(), 1u);
}

// ---------------------------------------------------------------------
// Engine-routed Shield verdicts.
// ---------------------------------------------------------------------

TEST(ResponseShield, DefaultPolicyShieldFollowsRules) {
  // Rules turn a (default) suppress into passthrough: the resilient
  // base sees and refuses the unbalanced unlock.
  shield::ShieldPolicyGuard dflt(ShieldPolicy::kSuppress);
  ResponseRulesGuard rules("misuse=passthrough");
  Shield<TatasLockResilient> s;
  EXPECT_FALSE(s.release());
  const auto snap = s.snapshot();
  EXPECT_EQ(snap.passed_through, 1u);
  EXPECT_EQ(snap.suppressed, 0u);
}

TEST(ResponseShield, ExplicitPolicyIgnoresRules) {
  ResponseRulesGuard rules("misuse=passthrough");
  Shield<TatasLockResilient> s(ShieldPolicy::kSuppress);
  EXPECT_FALSE(s.release());
  const auto snap = s.snapshot();
  EXPECT_EQ(snap.suppressed, 1u);
  EXPECT_EQ(snap.passed_through, 0u);
}

TEST(ResponseShield, SetPolicyPinsInstanceAgainstRules) {
  ResponseRulesGuard rules("misuse=passthrough");
  Shield<TatasLockResilient> s;
  s.set_policy(ShieldPolicy::kSuppress);
  EXPECT_FALSE(s.release());
  EXPECT_EQ(s.snapshot().suppressed, 1u);
}

TEST(ResponseShield, ContendedRuleEscalatesOnLiveWaiters) {
  shield::ShieldPolicyGuard dflt(ShieldPolicy::kSuppress);
  ResponseRulesGuard rules("misuse@uncontended=passthrough;misuse=log");
  Shield<TicketLockResilient> s;
  // Uncontended: passthrough (base refuses).
  EXPECT_FALSE(s.release());
  EXPECT_EQ(s.snapshot().passed_through, 1u);
  // Contended: a thread parks on the lock, the same misuse now logs.
  std::atomic<bool> held{false}, go{false};
  std::thread owner([&] {
    s.acquire();
    held.store(true);
    while (!go.load()) std::this_thread::yield();
    s.release();
  });
  while (!held.load()) std::this_thread::yield();
  std::thread waiter([&] {
    s.acquire();
    s.release();
  });
  while (s.waiters() == 0) std::this_thread::yield();
  EXPECT_FALSE(s.release());  // non-owner unlock: logged + suppressed
  EXPECT_EQ(s.snapshot().suppressed, 1u);
  go.store(true);
  owner.join();
  waiter.join();
  EXPECT_GE(s.contended_total(), 1u);
}

TEST(ResponseShield, AbortVerdictHitsTrapAndDegradesToSuppress) {
  static std::atomic<int> trapped{0};
  trapped.store(0);
  shield::ShieldPolicyGuard dflt(ShieldPolicy::kSuppress);
  ResponseRulesGuard rules("misuse=abort");
  response::ScopedAbortHandler trap(
      [](ResponseEvent, const void*) { trapped.fetch_add(1); });
  Shield<TatasLockResilient> s;
  EXPECT_FALSE(s.release());  // abort verdict -> trap -> suppressed
  EXPECT_EQ(trapped.load(), 1);
  EXPECT_EQ(s.snapshot().suppressed, 1u);
  // Still functional.
  s.acquire();
  EXPECT_TRUE(s.release());
}

TEST(ResponseShield, AdaptivePresetAbsorbsReentrantRelock) {
  // Regression: the uncontended-passthrough tier must NOT forward a
  // reentrant relock — on a non-reentrant base that is a guaranteed
  // self-deadlock, not a harmless misuse. The preset pins relocks to
  // suppress, so the second acquire is absorbed as a depth bump.
  shield::ShieldPolicyGuard dflt(ShieldPolicy::kSuppress);
  ResponseRulesGuard rules(response::adaptive_policy_spec());
  Shield<TatasLock> s;
  s.acquire();
  s.acquire();  // would spin forever if passed through
  EXPECT_EQ(s.held_depth(), 2u);
  EXPECT_EQ(s.snapshot().reentrant_absorbed, 1u);
  EXPECT_TRUE(s.release());
  EXPECT_TRUE(s.release());
}

TEST(ResponseShield, AdaptivePresetNeverForwardsNonOwnerUnlock) {
  // A non-owner unlock is the paper's headline corruption even with an
  // empty waiter queue: the preset logs + suppresses it instead of
  // forwarding it under the uncontended tier.
  shield::ShieldPolicyGuard dflt(ShieldPolicy::kSuppress);
  ResponseRulesGuard rules(response::adaptive_policy_spec());
  Shield<TatasLock> s;  // ORIGINAL base: a forwarded unlock would free it
  std::atomic<bool> held{false}, go{false};
  std::thread owner([&] {
    s.acquire();
    held.store(true);
    while (!go.load()) std::this_thread::yield();
    s.release();
  });
  while (!held.load()) std::this_thread::yield();
  EXPECT_FALSE(s.release());  // no waiters, still refused
  EXPECT_TRUE(s.base().is_locked());  // the owner was not dispossessed
  EXPECT_EQ(s.snapshot().suppressed, 1u);
  go.store(true);
  owner.join();
}

namespace {
std::atomic<int> g_wedge_trapped{0};
std::atomic<bool> g_wedge_release{false};
void wedge_trap(ResponseEvent, const void*) {
  g_wedge_trapped.fetch_add(1);
  // Unstick the holder: the verdict fired at the ATTEMPT, before the
  // caller blocks, so releasing here lets the scenario complete.
  g_wedge_release.store(true, std::memory_order_release);
}
}  // namespace

TEST(ResponseLockdep, OwnedLockCountsAsContendedForCycleVerdict) {
  // Regression for the canonical two-thread AB/BA wedge: the closing
  // lock has ZERO queued waiters (its holder is parked on the OTHER
  // lock), but it is held by another thread — the abort tier must
  // still fire on the closing edge.
  g_wedge_trapped.store(0);
  g_wedge_release.store(false);
  shield::ShieldPolicyGuard dflt(ShieldPolicy::kSuppress);
  lockdep::LockdepModeGuard mode(lockdep::LockdepMode::kReport);
  ResponseRulesGuard rules("lockdep@contended=abort;lockdep=log");
  Shield<TatasLockResilient> a, b;
  a.acquire();
  b.acquire();  // edge A->B
  EXPECT_TRUE(b.release());
  EXPECT_TRUE(a.release());

  std::atomic<bool> held{false};
  std::thread holder([&] {
    a.acquire();  // holds A — the "parked on the other lock" twin
    held.store(true);
    // Released by the trap; the deadline keeps a missed verdict from
    // hanging the test (it then fails on the trap count instead).
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::seconds(10);
    while (!g_wedge_release.load(std::memory_order_acquire) &&
           std::chrono::steady_clock::now() < deadline) {
      std::this_thread::yield();
    }
    a.release();
  });
  while (!held.load()) std::this_thread::yield();
  {
    response::ScopedAbortHandler trap(wedge_trap);
    b.acquire();
    a.acquire();  // closing edge B->A: A owned, 0 waiters -> abort
    EXPECT_TRUE(a.release());
    EXPECT_TRUE(b.release());
  }
  holder.join();
  EXPECT_EQ(g_wedge_trapped.load(), 1);
}

// ---------------------------------------------------------------------
// Verify layer: the escalation matrix and the compatibility mapping.
// ---------------------------------------------------------------------

TEST(EscalationMatrix, LegacyCompatMappingHolds) {
  EXPECT_TRUE(verify::verify_legacy_compat_mapping());
}

TEST(EscalationMatrix, AllTiersFireAcrossFamilies) {
  const auto rows = verify::run_escalation_matrix();
  verify::print_escalation_matrix(rows);
  ASSERT_EQ(rows.size(), 3u);  // TAS, Ticket, MCS
  for (const auto& r : rows) {
    EXPECT_TRUE(r.uncontended_passthrough) << r.lock;
    EXPECT_TRUE(r.contended_logged) << r.lock;
    EXPECT_TRUE(r.contended_suppressed) << r.lock;
    EXPECT_TRUE(r.cycle_abort_verdict) << r.lock;
    EXPECT_TRUE(r.threads_joined) << r.lock;
    EXPECT_TRUE(r.all_pass()) << r.lock;
  }
}
