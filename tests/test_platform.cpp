// Unit tests for the platform substrate: cache-line padding, spin/backoff
// policies, the dense thread-id registry, and the topology model.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>
#include <vector>

#include "platform/backoff.hpp"
#include "platform/cacheline.hpp"
#include "platform/spin.hpp"
#include "platform/thread_registry.hpp"
#include "platform/topology.hpp"

namespace rp = resilock::platform;

TEST(Cacheline, PaddedTypeOccupiesExactlyOneLine) {
  EXPECT_EQ(sizeof(rp::CacheLineAligned<char>), rp::kCacheLineSize);
  EXPECT_EQ(sizeof(rp::CacheLineAligned<std::atomic<std::uint64_t>>),
            rp::kCacheLineSize);
  EXPECT_EQ(alignof(rp::CacheLineAligned<int>), rp::kCacheLineSize);
}

TEST(Cacheline, ArrayElementsLandOnDistinctLines) {
  rp::CacheLineAligned<std::atomic<int>> arr[4];
  for (int i = 0; i < 3; ++i) {
    const auto a = reinterpret_cast<std::uintptr_t>(&arr[i].value);
    const auto b = reinterpret_cast<std::uintptr_t>(&arr[i + 1].value);
    EXPECT_GE(b - a, rp::kCacheLineSize);
  }
}

TEST(Cacheline, ValueAccessors) {
  rp::CacheLineAligned<int> x(42);
  EXPECT_EQ(*x, 42);
  *x = 7;
  EXPECT_EQ(x.value, 7);
}

TEST(SpinWait, PausesThenYieldsWithoutBlocking) {
  rp::SpinWait w(8);
  for (int i = 0; i < 100; ++i) w.pause();  // must terminate promptly
  EXPECT_EQ(w.spins(), 8u);                 // capped at the threshold
  w.reset();
  EXPECT_EQ(w.spins(), 0u);
}

TEST(SpinWait, SpinUntilObservesFlagFromAnotherThread) {
  std::atomic<bool> flag{false};
  std::thread t([&] { flag.store(true, std::memory_order_release); });
  rp::spin_until([&] { return flag.load(std::memory_order_acquire); });
  t.join();
  SUCCEED();
}

TEST(Backoff, LimitGrowsGeometricallyAndSaturates) {
  rp::ExponentialBackoff bo(4, 64);
  EXPECT_EQ(bo.current_limit(), 4u);
  for (int i = 0; i < 10; ++i) bo.pause();
  EXPECT_EQ(bo.current_limit(), 64u);  // saturated at max
  bo.reset();
  EXPECT_EQ(bo.current_limit(), 4u);
}

TEST(Backoff, DegenerateBoundsAreRepaired) {
  rp::ExponentialBackoff bo(0, 0);  // min clamped to 1, max to min
  bo.pause();                       // must not hang or divide by zero
  EXPECT_GE(bo.current_limit(), 1u);
}

TEST(ThreadRegistry, MainThreadGetsStablePid) {
  const rp::pid_t a = rp::self_pid();
  const rp::pid_t b = rp::self_pid();
  EXPECT_EQ(a, b);
  EXPECT_LT(a, rp::ThreadRegistry::kCapacity);
}

TEST(ThreadRegistry, ConcurrentThreadsGetDistinctPids) {
  constexpr int kThreads = 8;
  std::vector<std::thread> threads;
  std::atomic<int> ready{0};
  std::atomic<bool> go{false};
  std::vector<rp::pid_t> pids(kThreads, rp::kInvalidPid);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      ready.fetch_add(1);
      while (!go.load()) std::this_thread::yield();
      pids[i] = rp::self_pid();
      while (go.load()) std::this_thread::yield();  // hold slot
    });
  }
  while (ready.load() != kThreads) std::this_thread::yield();
  go.store(true);
  // Wait until all have registered.
  for (;;) {
    bool all = true;
    for (auto p : pids)
      if (p == rp::kInvalidPid) all = false;
    if (all) break;
    std::this_thread::yield();
  }
  std::set<rp::pid_t> distinct(pids.begin(), pids.end());
  EXPECT_EQ(distinct.size(), static_cast<std::size_t>(kThreads));
  go.store(false);
  for (auto& t : threads) t.join();
}

TEST(ThreadRegistry, PidsAreRecycledAfterThreadExit) {
  rp::pid_t first = rp::kInvalidPid;
  std::thread t1([&] { first = rp::self_pid(); });
  t1.join();
  rp::pid_t second = rp::kInvalidPid;
  std::thread t2([&] { second = rp::self_pid(); });
  t2.join();
  // With no other thread churn, the released slot is the smallest free
  // one and is handed out again.
  EXPECT_EQ(first, second);
}

TEST(Topology, UniformMapsPidsRoundRobinInBlocks) {
  const auto topo = rp::Topology::uniform(2, 4);
  EXPECT_EQ(topo.num_domains(), 2u);
  EXPECT_EQ(topo.domain_of(0), 0u);
  EXPECT_EQ(topo.domain_of(3), 0u);
  EXPECT_EQ(topo.domain_of(4), 1u);
  EXPECT_EQ(topo.domain_of(7), 1u);
  EXPECT_EQ(topo.domain_of(8), 0u);  // wraps
}

TEST(Topology, SingleDomainDegenerateCase) {
  const auto topo = rp::Topology::uniform(1, 1);
  for (rp::pid_t p = 0; p < 16; ++p) EXPECT_EQ(topo.domain_of(p), 0u);
}

TEST(Topology, HostDefaultModelsTwoDomains) {
  const auto& topo = rp::Topology::host_default();
  EXPECT_EQ(topo.num_domains(), 2u);
  EXPECT_GE(topo.threads_per_domain(), 1u);
}

TEST(Topology, ZeroArgumentsAreRepaired) {
  const auto topo = rp::Topology::uniform(0, 0);
  EXPECT_EQ(topo.num_domains(), 1u);
  EXPECT_EQ(topo.domain_of(123), 0u);
}

TEST(Topology, HardwareThreadsIsPositive) {
  EXPECT_GE(rp::hardware_threads(), 1u);
}
