// Direct tests of HeldLockTable's spillover-map path, which
// test_shield.cpp only crosses incidentally: fast-path overflow into
// the spill map, erase-from-spill, promotion back into freed fast
// slots, and depth bookkeeping while an entry lives in the spill.
#include <gtest/gtest.h>

#include <cstddef>
#include <unordered_map>
#include <vector>

#include "shield/held_lock_table.hpp"

using resilock::shield::HeldLockTable;

namespace {
constexpr std::size_t kFast = HeldLockTable::kFastSlots;
}

TEST(HeldLockTableSpill, OverflowLandsInSpillExactly) {
  HeldLockTable t;
  std::vector<int> locks(kFast + 3);
  for (auto& l : locks) t.note_acquired(&l);
  EXPECT_EQ(t.held_count(), kFast + 3);
  EXPECT_FALSE(t.fast_path_only());
  // Every lock — fast or spilled — reports exact depth 1.
  for (auto& l : locks) EXPECT_EQ(t.depth(&l), 1u);
  // A lock never acquired is not conflated with any spilled one.
  int stranger = 0;
  EXPECT_EQ(t.depth(&stranger), 0u);
  EXPECT_EQ(t.note_released(&stranger), HeldLockTable::kNotHeld);
}

TEST(HeldLockTableSpill, EraseFromSpillDirectly) {
  HeldLockTable t;
  std::vector<int> locks(kFast + 2);
  for (auto& l : locks) t.note_acquired(&l);
  // locks[kFast] and locks[kFast+1] are the spilled ones (the first
  // kFast acquisitions filled the fast array).
  EXPECT_EQ(t.note_released(&locks[kFast]), 0);
  EXPECT_EQ(t.depth(&locks[kFast]), 0u);
  EXPECT_EQ(t.held_count(), kFast + 1);
  // Double release of the erased spill entry is refused.
  EXPECT_EQ(t.note_released(&locks[kFast]), HeldLockTable::kNotHeld);
  // The fast-path entries were untouched by the spill erase.
  for (std::size_t i = 0; i < kFast; ++i) {
    EXPECT_EQ(t.depth(&locks[i]), 1u) << i;
  }
}

TEST(HeldLockTableSpill, SpillDepthCountsExactly) {
  HeldLockTable t;
  std::vector<int> filler(kFast);
  for (auto& l : filler) t.note_acquired(&l);
  int deep = 0;  // lives in the spill from its first acquisition
  t.note_acquired(&deep);
  t.note_acquired(&deep);
  t.note_acquired(&deep);
  EXPECT_FALSE(t.fast_path_only());
  EXPECT_EQ(t.depth(&deep), 3u);
  EXPECT_EQ(t.note_released(&deep), 2);
  EXPECT_EQ(t.note_released(&deep), 1);
  EXPECT_EQ(t.depth(&deep), 1u);
  t.note_acquired(&deep);  // bump back up while still spilled
  EXPECT_EQ(t.depth(&deep), 2u);
  EXPECT_EQ(t.note_released(&deep), 1);
  EXPECT_EQ(t.note_released(&deep), 0);
  EXPECT_EQ(t.note_released(&deep), HeldLockTable::kNotHeld);
}

TEST(HeldLockTableSpill, PromotionPreservesDepth) {
  HeldLockTable t;
  std::vector<int> filler(kFast);
  for (auto& l : filler) t.note_acquired(&l);
  int deep = 0;
  t.note_acquired(&deep);  // spilled
  t.note_acquired(&deep);
  t.note_acquired(&deep);  // spill depth 3
  // Free one fast slot: the single spilled entry must be promoted into
  // it with its recursion depth intact.
  EXPECT_EQ(t.note_released(&filler[0]), 0);
  EXPECT_TRUE(t.fast_path_only());
  EXPECT_EQ(t.depth(&deep), 3u);
  EXPECT_EQ(t.note_released(&deep), 2);
  EXPECT_EQ(t.note_released(&deep), 1);
  EXPECT_EQ(t.note_released(&deep), 0);
}

TEST(HeldLockTableSpill, RepeatedPromotionDrainsSpill) {
  HeldLockTable t;
  constexpr std::size_t kTotal = kFast * 2;
  std::vector<int> locks(kTotal);
  for (auto& l : locks) t.note_acquired(&l);
  EXPECT_FALSE(t.fast_path_only());
  // Release the original fast residents one by one; each release frees
  // a slot and promotes one spilled entry, so the table must become
  // fast-path-only exactly when the spill has drained.
  for (std::size_t i = 0; i < kFast; ++i) {
    EXPECT_EQ(t.note_released(&locks[i]), 0);
  }
  EXPECT_TRUE(t.fast_path_only());
  EXPECT_EQ(t.held_count(), kTotal - kFast);
  for (std::size_t i = kFast; i < kTotal; ++i) {
    EXPECT_EQ(t.depth(&locks[i]), 1u) << i;
    EXPECT_EQ(t.note_released(&locks[i]), 0);
  }
  EXPECT_EQ(t.held_count(), 0u);
}

TEST(HeldLockTableSpill, RePromotionCycleStaysExact) {
  // Churn across the boundary: overflow, drain, overflow again — the
  // table must never lose or invent an entry (the exemplar's two bugs,
  // at the boundary, repeatedly).
  HeldLockTable t;
  std::unordered_map<const void*, std::uint32_t> reference;
  std::vector<int> locks(kFast * 3);
  auto acquire = [&](int& l) {
    t.note_acquired(&l);
    ++reference[&l];
  };
  auto release = [&](int& l) {
    auto it = reference.find(&l);
    if (it == reference.end()) {
      EXPECT_EQ(t.note_released(&l), HeldLockTable::kNotHeld);
      return;
    }
    EXPECT_EQ(t.note_released(&l), static_cast<int>(it->second - 1));
    if (--it->second == 0) reference.erase(it);
  };
  for (int round = 0; round < 4; ++round) {
    for (auto& l : locks) acquire(l);                    // deep overflow
    for (std::size_t i = 0; i < locks.size(); i += 2) {  // partial drain
      release(locks[i]);
    }
    for (std::size_t i = 0; i < locks.size(); i += 4) {  // re-acquire
      acquire(locks[i]);
    }
    // Verify against the reference, then drain completely.
    for (auto& l : locks) {
      const auto it = reference.find(&l);
      EXPECT_EQ(t.depth(&l), it == reference.end() ? 0u : it->second);
    }
    for (auto& l : locks) {
      while (reference.count(&l) != 0) release(l);
      release(l);  // one extra: must be kNotHeld
    }
    EXPECT_EQ(t.held_count(), 0u);
    EXPECT_TRUE(t.fast_path_only());
  }
}
