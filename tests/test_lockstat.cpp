// The lockstat layer (src/observe/): log-bucketed histograms, striped
// recording, call-site tables, the shield hook points, and the three
// report paths.
//
//   * histogram — bucket boundaries round-trip across the whole
//     64-bit range, percentiles land within one bucket width, and
//     concurrent striped recording merges to EXACT count/total/max;
//   * reconciliation — under a mixed fuzz workload the lockstat
//     counters equal the shield's own (acquisitions, contended waits,
//     trylock failures, intercepted misuses), per class, exactly;
//   * modes — rw acquisitions tally under their AccessMode;
//   * reports — the /proc/lock_stat-shaped table renders labels,
//     percentiles, and call sites; the signal trigger requests a dump
//     that the collector services onto disk;
//   * escaping — metric keys and class labels with JSON
//     metacharacters survive both the metrics JSON and the trace
//     JSONL paths.
#include <gtest/gtest.h>

#include <atomic>
#include <csignal>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/rw/crw.hpp"
#include "core/tas.hpp"
#include "lockdep/event_ring.hpp"
#include "lockdep/lockdep.hpp"
#include "lockdep/trace_export.hpp"
#include "observe/callsite.hpp"
#include "observe/histogram.hpp"
#include "observe/lockstat.hpp"
#include "response/response.hpp"
#include "runtime/thread_team.hpp"
#include "shield/rw_shield.hpp"
#include "shield/shield.hpp"
#include "telemetry/collector.hpp"
#include "telemetry/metrics.hpp"

using namespace resilock;
using observe::bucket_index;
using observe::bucket_lower_bound;
using observe::bucket_width;
using observe::ClassReport;
using observe::HistogramSnapshot;
using observe::kBucketCount;
using observe::LockStat;
using observe::LogHistogram;

namespace {

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Renders `classes` through the live report renderer into a string.
std::string render(const std::vector<ClassReport>& classes,
                   std::size_t top_sites = 4, bool symbolize = true) {
  char* buf = nullptr;
  std::size_t len = 0;
  std::FILE* f = open_memstream(&buf, &len);
  observe::write_report(f, classes, top_sites, symbolize);
  std::fclose(f);
  std::string out(buf, len);
  std::free(buf);
  return out;
}

const ClassReport* find_class(const std::vector<ClassReport>& classes,
                              const std::string& label) {
  for (const ClassReport& c : classes) {
    if (c.label == label) return &c;
  }
  return nullptr;
}

// Environment pins shared by the shield-facing tests: suppress policy
// (misuses are counted, not fatal), no response rules, lockstat on,
// hold sampling pinned to 1 (exact mode) so hold windows reconcile
// one-to-one with acquisitions.
class LockstatShieldTest : public ::testing::Test {
 protected:
  LockstatShieldTest()
      : rules_(""),
        policy_(shield::ShieldPolicy::kSuppress),
        stats_(true),
        sample_(1) {
    LockStat::instance().reset();
  }

  response::ResponseRulesGuard rules_;
  shield::ShieldPolicyGuard policy_;
  observe::LockstatGuard stats_;
  observe::LockstatSampleGuard sample_;
};

}  // namespace

// ---------------------------------------------------------------------
// Histogram buckets.
// ---------------------------------------------------------------------

TEST(LockstatHistogram, BucketBoundariesRoundTrip) {
  // Small values are exact.
  for (std::uint64_t v = 0; v < observe::kSubBuckets; ++v) {
    EXPECT_EQ(bucket_index(v), v);
    EXPECT_EQ(bucket_lower_bound(v), v);
    EXPECT_EQ(bucket_width(v), 1u);
  }
  // Every bucket: its lower bound maps into it, its last value maps
  // into it, and the next value starts the next bucket.
  for (std::size_t i = 0; i < kBucketCount; ++i) {
    const std::uint64_t lo = bucket_lower_bound(i);
    const std::uint64_t w = bucket_width(i);
    EXPECT_EQ(bucket_index(lo), i) << "lo=" << lo;
    EXPECT_EQ(bucket_index(lo + w - 1), i) << "lo=" << lo << " w=" << w;
    if (i + 1 < kBucketCount) {
      EXPECT_EQ(bucket_index(lo + w), i + 1);
    }
  }
  // Top of range stays in bounds.
  EXPECT_LT(bucket_index(~std::uint64_t{0}), kBucketCount);
  EXPECT_LT(bucket_index(std::uint64_t{1} << 62), kBucketCount);
  // Relative width bound: width / lower <= 1 / kSubBuckets.
  for (std::size_t i = observe::kSubBuckets; i < kBucketCount; ++i) {
    EXPECT_LE(bucket_width(i) * observe::kSubBuckets,
              bucket_lower_bound(i));
  }
}

TEST(LockstatHistogram, PercentilesWithinOneBucket) {
  HistogramSnapshot h;
  EXPECT_EQ(h.percentile(0.5), 0u);  // empty
  for (std::uint64_t v = 1; v <= 1000; ++v) h.add(v);
  EXPECT_EQ(h.count, 1000u);
  EXPECT_EQ(h.total, 500500u);
  EXPECT_EQ(h.max, 1000u);
  // A percentile answers within one bucket width (25% relative).
  const std::uint64_t p50 = h.percentile(0.50);
  const std::uint64_t p90 = h.percentile(0.90);
  const std::uint64_t p99 = h.percentile(0.99);
  EXPECT_NEAR(static_cast<double>(p50), 500.0, 500.0 * 0.25);
  EXPECT_NEAR(static_cast<double>(p90), 900.0, 900.0 * 0.25);
  EXPECT_NEAR(static_cast<double>(p99), 990.0, 990.0 * 0.25);
  EXPECT_LE(p50, p90);
  EXPECT_LE(p90, p99);
  EXPECT_LE(p99, h.max);
  // p100 clamps to the exact max; p0 answers the first sample's bucket.
  EXPECT_EQ(h.percentile(1.0), 1000u);
  EXPECT_GE(h.percentile(0.0), 1u);

  HistogramSnapshot one;
  one.add(42);
  EXPECT_EQ(one.percentile(0.5), 42u);  // midpoint clamped to max
}

TEST(LockstatHistogram, StripedConcurrentRecordingMergesExactly) {
  LogHistogram h;
  constexpr std::uint32_t kThreads = 4;
  constexpr std::uint64_t kPerThread = 100000;
  runtime::ThreadTeam::run(kThreads, [&](std::uint32_t) {
    for (std::uint64_t i = 0; i < kPerThread; ++i) {
      h.record(i % 1000 + 1);
    }
  });
  const HistogramSnapshot s = h.snapshot();
  EXPECT_EQ(s.count, kThreads * kPerThread);
  // Sum over each thread of sum_{i<kPerThread} (i % 1000 + 1).
  std::uint64_t per_thread_total = 0;
  for (std::uint64_t i = 0; i < kPerThread; ++i) per_thread_total += i % 1000 + 1;
  EXPECT_EQ(s.total, kThreads * per_thread_total);
  EXPECT_EQ(s.max, 1000u);
  std::uint64_t bucket_sum = 0;
  for (std::uint64_t c : s.counts) bucket_sum += c;
  EXPECT_EQ(bucket_sum, s.count);

  h.reset();
  const HistogramSnapshot z = h.snapshot();
  EXPECT_EQ(z.count, 0u);
  EXPECT_EQ(z.total, 0u);
  EXPECT_EQ(z.max, 0u);
}

// ---------------------------------------------------------------------
// Call-site table.
// ---------------------------------------------------------------------

TEST(LockstatCallSites, RecordsDistinctSitesAndCountsOverflow) {
  observe::CallSiteTable t;
  char anchors[observe::CallSiteTable::kSlots + 2];
  for (std::size_t i = 0; i < observe::CallSiteTable::kSlots; ++i) {
    t.record(&anchors[i]);
    t.record(&anchors[i]);
  }
  t.record(nullptr);  // ignored
  std::uint64_t rows = 0, total = 0;
  t.for_each([&](std::uintptr_t site, std::uint64_t count) {
    EXPECT_NE(site, 0u);
    EXPECT_EQ(count, 2u);
    ++rows;
    total += count;
  });
  EXPECT_EQ(rows, observe::CallSiteTable::kSlots);
  EXPECT_EQ(total, 2 * observe::CallSiteTable::kSlots);
  EXPECT_EQ(t.overflow(), 0u);
  // Table full: new sites tally as overflow, existing sites still count.
  t.record(&anchors[observe::CallSiteTable::kSlots]);
  t.record(&anchors[observe::CallSiteTable::kSlots + 1]);
  EXPECT_EQ(t.overflow(), 2u);
  t.record(&anchors[0]);
  EXPECT_EQ(t.overflow(), 2u);
  t.reset();
  std::uint64_t after = 0;
  t.for_each([&](std::uintptr_t, std::uint64_t) { ++after; });
  EXPECT_EQ(after, 0u);
  EXPECT_EQ(t.overflow(), 0u);
}

// ---------------------------------------------------------------------
// Shield reconciliation.
// ---------------------------------------------------------------------

TEST_F(LockstatShieldTest, FuzzWorkloadReconcilesExactlyWithShield) {
  Shield<TasLock> lock;
  lock.set_lockdep_label("lockstat.fuzz");
  lock.reset_stats();
  constexpr std::uint32_t kThreads = 4;
  constexpr std::uint64_t kIters = 20000;
  std::atomic<std::uint64_t> try_acquired{0}, try_failed{0};
  runtime::ThreadTeam::run(kThreads, [&](std::uint32_t tid) {
    std::uint64_t seed = 0x9e3779b97f4a7c15ull + tid;
    for (std::uint64_t i = 0; i < kIters; ++i) {
      seed = seed * 6364136223846793005ull + 1442695040888963407ull;
      if ((seed >> 33) & 1) {
        lock.acquire();
        lock.release();
      } else if (lock.try_acquire()) {
        try_acquired.fetch_add(1, std::memory_order_relaxed);
        lock.release();
      } else {
        try_failed.fetch_add(1, std::memory_order_relaxed);
      }
    }
  });
  // Deterministic misuses on top: three double unlocks, suppressed.
  for (int i = 0; i < 3; ++i) lock.release();

  const shield::ShieldSnapshot shot = lock.snapshot();
  const auto classes = LockStat::instance().report();
  const ClassReport* c = find_class(classes, "lockstat.fuzz");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->acquisitions, shot.acquisitions);
  EXPECT_EQ(c->contentions, lock.contended_total());
  EXPECT_EQ(c->trylock_fails, try_failed.load());
  EXPECT_EQ(c->misuses, shot.total_misuses());
  EXPECT_EQ(c->misuses, 3u);
  // The histograms saw exactly the windows the counters counted.
  EXPECT_EQ(c->hold.count, c->acquisitions);
  EXPECT_EQ(c->wait.count, c->contentions);
  EXPECT_EQ(c->by_mode[0], c->acquisitions);  // all exclusive
}

TEST_F(LockstatShieldTest, UncontendedHoldWindowsMatchAcquisitions) {
  Shield<TasLock> lock;
  lock.set_lockdep_label("lockstat.hold");
  constexpr std::uint64_t kIters = 1000;
  for (std::uint64_t i = 0; i < kIters; ++i) {
    lock.acquire();
    lock.release();
  }
  const auto classes = LockStat::instance().report();
  const ClassReport* c = find_class(classes, "lockstat.hold");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->acquisitions, kIters);
  EXPECT_EQ(c->contentions, 0u);  // single thread never waits
  EXPECT_EQ(c->hold.count, kIters);
  EXPECT_GT(c->hold.total, 0u);
  EXPECT_GE(c->hold.max, c->hold.percentile(0.99));
  // The acquire sites were captured (one loop = one call site).
  ASSERT_FALSE(c->sites.empty());
  EXPECT_EQ(c->sites[0].count + static_cast<std::uint64_t>(
                                    c->site_overflow),
            kIters);
}

// Default-mode cost control: with 1-in-N sampling only ~1/N of hold
// windows are timed, while the acquisition tally (and everything else
// that reconciles against the shield) stays exact. The per-thread
// decimation counter persists across tests, so the sampled count can
// be off by one from perfect alignment.
TEST_F(LockstatShieldTest, HoldSamplingDecimatesTimedWindowsOnly) {
  observe::LockstatSampleGuard sample(4);
  EXPECT_EQ(observe::lockstat_sample(), 4u);
  Shield<TasLock> lock;
  lock.set_lockdep_label("lockstat.sampled");
  constexpr std::uint64_t kIters = 1000;
  for (std::uint64_t i = 0; i < kIters; ++i) {
    lock.acquire();
    lock.release();
  }
  const auto classes = LockStat::instance().report();
  const ClassReport* c = find_class(classes, "lockstat.sampled");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->acquisitions, kIters);  // exact regardless of sampling
  EXPECT_EQ(c->sites[0].count + c->site_overflow, kIters);
  EXPECT_GE(c->hold.count, kIters / 4 - 1);
  EXPECT_LE(c->hold.count, kIters / 4 + 1);
  EXPECT_EQ(c->hold_sample, 4u);
  // Non-power-of-two rates round down; 0/1 mean exact.
  observe::set_lockstat_sample(6);
  EXPECT_EQ(observe::lockstat_sample(), 4u);
  observe::set_lockstat_sample(0);
  EXPECT_EQ(observe::lockstat_sample(), 1u);
}

TEST_F(LockstatShieldTest, DisabledRecordsNothing) {
  observe::LockstatGuard off(false);
  Shield<TasLock> lock;
  lock.set_lockdep_label("lockstat.disabled");
  for (int i = 0; i < 100; ++i) {
    lock.acquire();
    lock.release();
  }
  const auto classes = LockStat::instance().report();
  EXPECT_EQ(find_class(classes, "lockstat.disabled"), nullptr);
}

TEST_F(LockstatShieldTest, MisuseBeforeFirstAcquireRegistersClass) {
  Shield<TasLock> lock;
  lock.set_lockdep_label("lockstat.orphan");
  lock.release();  // double unlock on a never-acquired lock
  const auto classes = LockStat::instance().report();
  const ClassReport* c = find_class(classes, "lockstat.orphan");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->misuses, 1u);
  EXPECT_EQ(c->acquisitions, 0u);
}

TEST_F(LockstatShieldTest, RwAcquisitionsTallyUnderTheirMode) {
  using Np = CrwLock<kOriginal, SplitReadIndicator, RwPreference::kNeutral>;
  shield::RwShield<Np> rw;
  rw.set_lockdep_label("lockstat.rw");
  Np::Context ctx;
  constexpr std::uint64_t kReads = 200, kWrites = 100;
  for (std::uint64_t i = 0; i < kReads; ++i) {
    rw.rlock(ctx);
    EXPECT_TRUE(rw.runlock(ctx));
  }
  for (std::uint64_t i = 0; i < kWrites; ++i) {
    rw.wlock(ctx);
    EXPECT_TRUE(rw.wunlock(ctx));
  }
  const auto classes = LockStat::instance().report();
  const ClassReport* c = find_class(classes, "lockstat.rw");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->by_mode[static_cast<std::size_t>(AccessMode::kRead)],
            kReads);
  EXPECT_EQ(c->by_mode[static_cast<std::size_t>(AccessMode::kWrite)],
            kWrites);
  EXPECT_EQ(c->acquisitions, kReads + kWrites);
  EXPECT_EQ(c->hold.count, kReads + kWrites);
  // totals() aggregates what report() itemized.
  const LockStat::Totals t = LockStat::instance().totals();
  EXPECT_GE(t.acquisitions, kReads + kWrites);
  EXPECT_GE(t.classes, 1u);
}

// ---------------------------------------------------------------------
// Reports.
// ---------------------------------------------------------------------

TEST_F(LockstatShieldTest, ReportRendersLabelsPercentilesAndSites) {
  Shield<TasLock> lock;
  lock.set_lockdep_label("lockstat.render");
  runtime::ThreadTeam::run(2, [&](std::uint32_t) {
    for (int i = 0; i < 5000; ++i) {
      lock.acquire();
      lock.release();
    }
  });
  const std::string text = render(LockStat::instance().report());
  EXPECT_NE(text.find("lockstat.render"), std::string::npos) << text;
  EXPECT_NE(text.find("acquisitions"), std::string::npos);
  EXPECT_NE(text.find("p50"), std::string::npos);
  EXPECT_NE(text.find("p99"), std::string::npos);
  EXPECT_NE(text.find("0x"), std::string::npos);  // call-site address

  // Empty table renders the explicit placeholder, not garbage.
  const std::string empty = render({});
  EXPECT_NE(empty.find("no lock activity"), std::string::npos);
}

TEST(LockstatSymbolize, KnownFunctionAndRawFallback) {
  char buf[256];
  observe::symbolize_site(reinterpret_cast<std::uintptr_t>(&std::strtoul),
                          buf, sizeof buf, /*symbolize=*/false);
  EXPECT_EQ(std::string(buf).rfind("0x", 0), 0u);  // raw hex
  observe::symbolize_site(reinterpret_cast<std::uintptr_t>(&std::strtoul),
                          buf, sizeof buf, /*symbolize=*/true);
  EXPECT_NE(buf[0], '\0');  // resolved or raw, never empty
}

TEST(LockstatSignal, TriggerSetsFlagConsumedExactlyOnce) {
  (void)observe::consume_dump_request();  // drain any leftover
  ASSERT_TRUE(observe::install_signal_trigger(SIGUSR2));
  ASSERT_EQ(std::raise(SIGUSR2), 0);
  EXPECT_TRUE(observe::consume_dump_request());
  EXPECT_FALSE(observe::consume_dump_request());
}

TEST_F(LockstatShieldTest, CollectorServicesSignalAndFinalDump) {
  const std::string path =
      ::testing::TempDir() + "resilock_lockstat_report.txt";
  std::remove(path.c_str());
  setenv("RESILOCK_LOCKSTAT_FILE", path.c_str(), 1);
  // Long periodic interval: only the signal request and the final
  // forced dump can write the file.
  setenv("RESILOCK_LOCKSTAT_INTERVAL_MS", "60000", 1);

  Shield<TasLock> lock;
  lock.set_lockdep_label("lockstat.collector");
  for (int i = 0; i < 500; ++i) {
    lock.acquire();
    lock.release();
  }

  telemetry::Collector& c = telemetry::Collector::instance();
  c.start();
  observe::request_dump();  // what the SIGUSR2 handler does
  for (int spin = 0; spin < 200 && slurp(path).empty(); ++spin) {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
  }
  const std::string live = slurp(path);
  EXPECT_NE(live.find("lockstat.collector"), std::string::npos) << live;
  const std::uint64_t dumps_after_signal = c.stats().lockstat_dumps;
  EXPECT_GE(dumps_after_signal, 1u);
  c.stop();  // forces a final dump
  EXPECT_GT(c.stats().lockstat_dumps, 0u);
  const std::string final_report = slurp(path);
  EXPECT_NE(final_report.find("lockstat.collector"), std::string::npos);
  EXPECT_NE(final_report.find("p50"), std::string::npos);

  unsetenv("RESILOCK_LOCKSTAT_FILE");
  unsetenv("RESILOCK_LOCKSTAT_INTERVAL_MS");
}

// ---------------------------------------------------------------------
// Escaping.
// ---------------------------------------------------------------------

TEST(LockstatEscaping, MetricKeysEscapeInJson) {
  auto& reg = telemetry::MetricsRegistry::instance();
  reg.register_gauge("evil\"gauge\\name", [] { return 7u; });
  char* buf = nullptr;
  std::size_t len = 0;
  std::FILE* f = open_memstream(&buf, &len);
  telemetry::MetricsRegistry::write(f, reg.snapshot(),
                                    telemetry::MetricsFormat::kJson);
  std::fclose(f);
  std::string out(buf, len);
  std::free(buf);
  reg.unregister_gauge("evil\"gauge\\name");
  EXPECT_NE(out.find("evil\\\"gauge\\\\name"), std::string::npos) << out;
  // The lockstat rows joined the snapshot.
  EXPECT_NE(out.find("lockstat.enabled"), std::string::npos);
  EXPECT_NE(out.find("lockstat.acquisitions"), std::string::npos);
}

TEST(LockstatEscaping, ClassLabelsEscapeInTraceJsonl) {
  observe::LockstatGuard stats(true);
  shield::ShieldPolicyGuard policy(shield::ShieldPolicy::kSuppress);
  Shield<TasLock> lock;
  lock.set_lockdep_label("evil\"label\\");
  lock.acquire();
  lock.release();
  const lockdep::ClassId cls =
      lockdep::Graph::instance().find_class("evil\"label\\");
  ASSERT_NE(cls, lockdep::kInvalidClass);

  lockdep::TraceEvent e;
  e.ns = 1;
  e.kind = lockdep::EventKind::kHoldBegin;
  e.lock = &lock;
  e.pid = 0;
  e.a = cls;
  e.site = 0xdeadbeef;
  char* buf = nullptr;
  std::size_t len = 0;
  std::FILE* f = open_memstream(&buf, &len);
  lockdep::write_event_jsonl(f, e);
  std::fclose(f);
  std::string out(buf, len);
  std::free(buf);
  EXPECT_NE(out.find("\"cls_label\":\"evil\\\"label\\\\\""),
            std::string::npos)
      << out;
  EXPECT_NE(out.find("\"site\":\"0xdeadbeef\""), std::string::npos);
}
