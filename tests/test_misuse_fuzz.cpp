// Randomized misuse fuzzing over the resilient flavors.
//
// A deterministic RNG drives random interleavings of legitimate
// lock/unlock episodes and injected unbalanced releases across threads.
// Invariants checked on every schedule:
//   I1 — mutual exclusion never violated (MutexChecker);
//   I2 — a release paired with an acquire returns true;
//   I3 — an unbalanced release returns false (except HCLH, which is
//        immune and has nothing to detect);
//   I4 — the lock keeps making progress afterwards (the run finishes).
// Complements the scripted scenarios of test_misuse.cpp with breadth:
// the scripts pin down the paper's exact interleavings, the fuzzer walks
// thousands of others.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <tuple>

#include "core/ahmcs.hpp"
#include "core/hclh.hpp"
#include "core/hmcs.hpp"
#include "core/lock_registry.hpp"
#include "core/rw/crw.hpp"
#include "lock_test_util.hpp"
#include "shield/shield.hpp"
#include "runtime/rng.hpp"
#include "runtime/thread_team.hpp"
#include "runtime/timer.hpp"
#include "shield/rw_shield.hpp"
#include "verify/checkers.hpp"

using namespace resilock;
namespace rv = resilock::verify;

using FuzzParam = std::tuple<std::string, std::uint64_t>;  // lock, seed

class MisuseFuzz : public ::testing::TestWithParam<FuzzParam> {};

TEST_P(MisuseFuzz, RandomScheduleKeepsInvariants) {
  const auto& [name, seed] = GetParam();
  auto lock = make_lock(name, kResilient);
  rv::MutexChecker chk;
  std::atomic<std::uint64_t> balanced_failures{0};
  std::atomic<std::uint64_t> misuse_accepted{0};
  constexpr std::uint32_t kThreads = 4;
  constexpr int kSteps = 400;

  runtime::ThreadTeam::run(kThreads, [&, seed = seed,
                                      name = name](std::uint32_t tid) {
    runtime::Xoshiro256ss rng(seed * 1000003 + tid);
    for (int step = 0; step < kSteps; ++step) {
      switch (rng.bounded(4)) {
        case 0:
        case 1: {  // legitimate episode
          lock->acquire();
          chk.enter();
          runtime::busy_work(rng.bounded(64));
          chk.exit();
          if (!lock->release()) balanced_failures.fetch_add(1);
          break;
        }
        case 2: {  // legitimate trylock episode
          if (lock->try_acquire()) {
            chk.enter();
            chk.exit();
            if (!lock->release()) balanced_failures.fetch_add(1);
          }
          break;
        }
        case 3: {  // injected misuse: unbalanced release
          if (lock->release() && name != "HCLH") {
            misuse_accepted.fetch_add(1);
          }
          break;
        }
      }
    }
  });

  EXPECT_EQ(chk.max_simultaneous(), 1)
      << name << ": mutual exclusion violated under misuse fuzzing";
  EXPECT_EQ(balanced_failures.load(), 0u)
      << name << ": a balanced release was refused";
  EXPECT_EQ(misuse_accepted.load(), 0u)
      << name << ": an unbalanced release was accepted";
  // I4: one final clean episode.
  lock->acquire();
  EXPECT_TRUE(lock->release());
}

// ---------------------------------------------------------------------
// Reader-writer misuse fuzzing over the mode-aware shield: racing
// threads interleave legitimate read/write episodes with injected
// unbalanced read unlocks (the §4 misuse that silently corrupts every
// compact indicator) and bogus write unlocks. Invariants:
//   R1 — writers always mutually exclusive (MutexChecker on the W CS);
//   R2 — balanced runlock/wunlock never refused;
//   R3 — every injected misuse refused (shield interception);
//   R4 — the indicator balances out at the end (no §4 skew) and the
//        lock stays functional for both sides.
// ---------------------------------------------------------------------

class RwMisuseFuzz : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RwMisuseFuzz, RandomScheduleKeepsInvariants) {
  const std::uint64_t seed = GetParam();
  shield::ShieldPolicyGuard policy(shield::ShieldPolicy::kSuppress);
  response::ResponseRulesGuard rules("");
  using Rw = CrwLock<kOriginal, SplitReadIndicator, RwPreference::kNeutral>;
  shield::RwShield<Rw> rw;
  rv::MutexChecker wchk;
  std::atomic<std::uint64_t> balanced_failures{0};
  std::atomic<std::uint64_t> misuse_accepted{0};
  constexpr std::uint32_t kThreads = 4;
  constexpr int kSteps = 300;

  runtime::ThreadTeam::run(kThreads, [&, seed](std::uint32_t tid) {
    runtime::Xoshiro256ss rng(seed * 7777777 + tid);
    Rw::Context ctx;
    for (int step = 0; step < kSteps; ++step) {
      switch (rng.bounded(6)) {
        case 0:
        case 1: {  // legitimate read episode
          rw.rlock(ctx);
          runtime::busy_work(rng.bounded(32));
          if (!rw.runlock(ctx)) balanced_failures.fetch_add(1);
          break;
        }
        case 2: {  // legitimate write episode
          rw.wlock(ctx);
          wchk.enter();
          runtime::busy_work(rng.bounded(32));
          wchk.exit();
          if (!rw.wunlock(ctx)) balanced_failures.fetch_add(1);
          break;
        }
        case 3: {  // nested (recursive) read, absorbed by the shield
          rw.rlock(ctx);
          rw.rlock(ctx);
          if (!rw.runlock(ctx)) balanced_failures.fetch_add(1);
          if (!rw.runlock(ctx)) balanced_failures.fetch_add(1);
          break;
        }
        case 4: {  // injected misuse: unbalanced read unlock
          if (rw.runlock(ctx)) misuse_accepted.fetch_add(1);
          break;
        }
        case 5: {  // injected misuse: bogus write unlock
          if (rw.wunlock(ctx)) misuse_accepted.fetch_add(1);
          break;
        }
      }
    }
  });

  EXPECT_EQ(wchk.max_simultaneous(), 1)
      << "writer mutual exclusion violated under rw misuse fuzzing";
  EXPECT_EQ(balanced_failures.load(), 0u)
      << "a balanced rw release was refused";
  EXPECT_EQ(misuse_accepted.load(), 0u)
      << "an injected rw misuse was accepted";
  // R4: no §4 skew — the indicator balanced out, both sides functional.
  EXPECT_TRUE(rw.base().indicator().is_empty());
  Rw::Context c;
  rw.rlock(c);
  EXPECT_TRUE(rw.runlock(c));
  rw.wlock(c);
  EXPECT_TRUE(rw.wunlock(c));
  EXPECT_GT(rw.snapshot().total_misuses(), 0u);  // the fuzz really misused
}

INSTANTIATE_TEST_SUITE_P(Seeds, RwMisuseFuzz,
                         ::testing::Values(1ull, 2ull, 3ull));

// ---------------------------------------------------------------------
// Hierarchical misuse fuzzing under churn: deep fanout trees behind the
// ownership shield, with threads spread across leaves (so injected
// bogus releases land at random depths/paths of the hierarchy) and the
// AHMCS adaptive streak naturally flipping contexts between leaf-path
// and mid-tree root entry. Invariants:
//   H1 — mutual exclusion never violated;
//   H2 — balanced episodes never refused;
//   H3 — every injected unbalanced/non-owner release refused before
//        the base tree sees it;
//   H4 — shield counters reconcile after the storm: every injection is
//        accounted as an intercepted misuse and every interception was
//        suppressed (nothing leaked through to corrupt a parent-level
//        hand-off), and the tree still round-trips.
// ---------------------------------------------------------------------

using HierFuzzParam = std::tuple<std::string, std::uint64_t>;

class HierMisuseFuzz : public ::testing::TestWithParam<HierFuzzParam> {};

namespace {

template <typename L, typename... Args>
void hier_fuzz_storm(std::uint64_t seed, Args&&... args) {
  // The explicit per-instance policy pins the verdict (no engine
  // override), so the counter reconciliation below is exact.
  shield::Shield<L> lock(shield::ShieldPolicy::kSuppress,
                         std::forward<Args>(args)...);
  rv::MutexChecker chk;
  std::atomic<std::uint64_t> balanced_failures{0};
  std::atomic<std::uint64_t> misuse_accepted{0};
  std::atomic<std::uint64_t> injected{0};
  constexpr std::uint32_t kThreads = 4;
  constexpr int kSteps = 250;

  runtime::ThreadTeam::run(kThreads, [&, seed](std::uint32_t tid) {
    runtime::Xoshiro256ss rng(seed * 600011 + tid);
    typename shield::Shield<L>::Context ctx;
    for (int step = 0; step < kSteps; ++step) {
      switch (rng.bounded(3)) {
        case 0:
        case 1: {  // legitimate episode (the pid picks the leaf/depth)
          lock.acquire(ctx);
          chk.enter();
          runtime::busy_work(rng.bounded(48));
          chk.exit();
          if (!lock.release(ctx)) balanced_failures.fetch_add(1);
          break;
        }
        case 2: {  // injected misuse: unbalanced/non-owner release
          typename shield::Shield<L>::Context bogus;
          if (lock.release(bogus)) {
            misuse_accepted.fetch_add(1);
          } else {
            injected.fetch_add(1);
          }
          break;
        }
      }
    }
  });

  EXPECT_EQ(chk.max_simultaneous(), 1)
      << "hierarchical mutual exclusion violated under misuse fuzzing";
  EXPECT_EQ(balanced_failures.load(), 0u)
      << "a balanced hierarchical release was refused";
  EXPECT_EQ(misuse_accepted.load(), 0u)
      << "an injected hierarchical misuse was accepted";
  // H4: counters reconciled — every injection intercepted, every
  // interception suppressed, nothing passed through to the tree.
  const auto snap = lock.snapshot();
  EXPECT_GT(injected.load(), 0u);  // the storm really injected
  EXPECT_EQ(snap.total_misuses(), injected.load());
  EXPECT_EQ(snap.suppressed, injected.load());
  EXPECT_EQ(snap.passed_through, 0u);
  EXPECT_EQ(snap.acquisitions, snap.releases);
  typename shield::Shield<L>::Context fin;
  lock.acquire(fin);
  EXPECT_TRUE(lock.release(fin));
}

}  // namespace

TEST_P(HierMisuseFuzz, DeepTreeKeepsInvariantsUnderChurn) {
  const auto& [family, seed] = GetParam();
  const std::vector<std::uint32_t> fanouts{2, 2};
  if (family == "HMCS") {
    hier_fuzz_storm<HmcsLock>(seed, fanouts);
  } else if (family == "AHMCS") {
    hier_fuzz_storm<AhmcsLock>(seed, fanouts);
  } else {
    hier_fuzz_storm<HclhLock>(seed, platform::Topology::uniform(2, 2));
  }
}

INSTANTIATE_TEST_SUITE_P(
    Families, HierMisuseFuzz,
    ::testing::Combine(::testing::Values(std::string("HMCS"),
                                         std::string("HCLH"),
                                         std::string("AHMCS")),
                       ::testing::Values(1ull, 2ull)),
    [](const ::testing::TestParamInfo<HierFuzzParam>& info) {
      return std::get<0>(info.param) + "_s" +
             std::to_string(std::get<1>(info.param));
    });

namespace {

std::vector<FuzzParam> fuzz_params() {
  std::vector<FuzzParam> params;
  for (const auto& name : lock_names()) {
    for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
      params.emplace_back(name, seed);
    }
  }
  return params;
}

std::string fuzz_name(const ::testing::TestParamInfo<FuzzParam>& info) {
  return test::gtest_safe_name(std::get<0>(info.param) + "_s" +
                               std::to_string(std::get<1>(info.param)));
}

}  // namespace

INSTANTIATE_TEST_SUITE_P(AllResilientLocks, MisuseFuzz,
                         ::testing::ValuesIn(fuzz_params()), fuzz_name);
