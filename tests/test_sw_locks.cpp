// Unit tests for the software-only locks (§5 and Appendix A): Peterson,
// Fischer, Lamport fast 1/2, Bakery.
//
// Fischer and Lamport Algo 1 carry a real-time delay assumption; tests
// bound thread counts and use generous delays so the assumption holds in
// practice (see the header comments of the locks).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/sw/bakery.hpp"
#include "core/sw/fischer.hpp"
#include "core/sw/lamport_fast.hpp"
#include "core/sw/peterson.hpp"
#include "runtime/thread_team.hpp"
#include "verify/checkers.hpp"

using namespace resilock;
namespace rv = resilock::verify;

// ---------------------------- Peterson ---------------------------------

TEST(Peterson, TwoThreadMutualExclusion) {
  PetersonLock lock;
  std::uint64_t counter = 0;
  runtime::ThreadTeam::run(2, [&](std::uint32_t tid) {
    for (int i = 0; i < 20000; ++i) {
      lock.acquire(tid);
      ++counter;
      lock.release(tid);
    }
  });
  EXPECT_EQ(counter, 40000u);
}

TEST(Peterson, MisuseByIdleThreadIsNoop) {
  PetersonLock lock;
  lock.acquire(0);
  EXPECT_TRUE(lock.release(1));  // thread 1 is idle: side-effect free
  std::atomic<bool> t1_in{false};
  rv::Probe t1([&] {
    lock.acquire(1);
    t1_in.store(true);
    lock.release(1);
  });
  EXPECT_FALSE(rv::wait_for([&] { return t1_in.load(); },
                            rv::milliseconds{200}));  // still excluded
  lock.release(0);
  t1.join();
  EXPECT_TRUE(t1_in.load());
}

TEST(Peterson, MisuseByWaitingThreadOnlyCancelsItsIntent) {
  PetersonLock lock;
  lock.acquire(0);
  lock.release(1);  // "waiting" thread 1 gives up its (nonexistent) claim
  lock.release(0);
  lock.acquire(1);  // and can still lock later
  EXPECT_TRUE(lock.release(1));
}

// ----------------------------- Fischer ---------------------------------

template <typename L>
class FischerTest : public ::testing::Test {};
using FischerTypes = ::testing::Types<FischerLock, FischerLockResilient>;
TYPED_TEST_SUITE(FischerTest, FischerTypes);

TYPED_TEST(FischerTest, SingleThreadRoundTrips) {
  TypeParam lock(64);
  for (int i = 0; i < 100; ++i) {
    lock.acquire();
    EXPECT_TRUE(lock.release());
  }
}

TYPED_TEST(FischerTest, TwoThreadMutualExclusion) {
  TypeParam lock(4096);
  std::uint64_t counter = 0;
  runtime::ThreadTeam::run(2, [&](std::uint32_t) {
    for (int i = 0; i < 2000; ++i) {
      lock.acquire();
      ++counter;
      lock.release();
    }
  });
  EXPECT_EQ(counter, 4000u);
}

TEST(FischerResilient, NonOwnerReleaseRefused) {
  FischerLockResilient lock(64);
  EXPECT_FALSE(lock.release());
  lock.acquire();
  std::thread t([&] { EXPECT_FALSE(lock.release()); });
  t.join();
  EXPECT_TRUE(lock.release());
}

TEST(FischerOriginal, NonOwnerReleaseOpensGate) {
  FischerLock lock(64);
  lock.acquire();
  std::thread t([&] { EXPECT_TRUE(lock.release()); });  // undetected
  t.join();
  // Gate now open: another acquire succeeds while "we" still hold it.
  std::thread t2([&] {
    lock.acquire();
    lock.release();
  });
  t2.join();
  SUCCEED();
}

// ------------------------- Lamport fast 1/2 ----------------------------

template <typename L>
class Lamport1Test : public ::testing::Test {};
using Lamport1Types =
    ::testing::Types<LamportFast1Lock, LamportFast1LockResilient>;
TYPED_TEST_SUITE(Lamport1Test, Lamport1Types);

TYPED_TEST(Lamport1Test, SingleThreadRoundTrips) {
  TypeParam lock(64);
  for (int i = 0; i < 100; ++i) {
    lock.acquire();
    EXPECT_TRUE(lock.release());
  }
}

TYPED_TEST(Lamport1Test, TwoThreadMutualExclusion) {
  TypeParam lock(4096);
  std::uint64_t counter = 0;
  runtime::ThreadTeam::run(2, [&](std::uint32_t) {
    for (int i = 0; i < 2000; ++i) {
      lock.acquire();
      ++counter;
      lock.release();
    }
  });
  EXPECT_EQ(counter, 4000u);
}

TEST(Lamport1Resilient, NonOwnerReleaseRefused) {
  LamportFast1LockResilient lock(64);
  EXPECT_FALSE(lock.release());
  lock.acquire();
  std::thread t([&] { EXPECT_FALSE(lock.release()); });
  t.join();
  EXPECT_TRUE(lock.release());
}

template <typename L>
class Lamport2Test : public ::testing::Test {};
using Lamport2Types =
    ::testing::Types<LamportFast2Lock, LamportFast2LockResilient>;
TYPED_TEST_SUITE(Lamport2Test, Lamport2Types);

TYPED_TEST(Lamport2Test, SingleThreadRoundTrips) {
  TypeParam lock(16);
  for (int i = 0; i < 100; ++i) {
    lock.acquire();
    EXPECT_TRUE(lock.release());
  }
}

TYPED_TEST(Lamport2Test, MutualExclusionFourThreads) {
  // Algorithm 2 is correct without timing assumptions: stress harder.
  TypeParam lock(64);
  std::uint64_t counter = 0;
  runtime::ThreadTeam::run(4, [&](std::uint32_t) {
    for (int i = 0; i < 1000; ++i) {
      lock.acquire();
      ++counter;
      lock.release();
    }
  });
  EXPECT_EQ(counter, 4000u);
}

TEST(Lamport2Resilient, NonOwnerReleaseRefused) {
  LamportFast2LockResilient lock(64);
  EXPECT_FALSE(lock.release());
  lock.acquire();
  std::thread t([&] { EXPECT_FALSE(lock.release()); });
  t.join();
  EXPECT_TRUE(lock.release());
}

// ------------------------------ Bakery ---------------------------------

TEST(Bakery, SingleThreadRoundTrips) {
  BakeryLock lock(8);
  for (int i = 0; i < 100; ++i) {
    lock.acquire();
    EXPECT_TRUE(lock.release());
  }
}

TEST(Bakery, MutualExclusionFourThreads) {
  BakeryLock lock(64);
  std::uint64_t counter = 0;
  runtime::ThreadTeam::run(4, [&](std::uint32_t) {
    for (int i = 0; i < 1000; ++i) {
      lock.acquire();
      ++counter;
      lock.release();
    }
  });
  EXPECT_EQ(counter, 4000u);
}

TEST(Bakery, MisuseIsSideEffectFree) {
  // Appendix A.1: resetting the caller's own (zero) number is a no-op.
  BakeryLock lock(64);
  std::atomic<bool> holder_out{false};
  rv::Probe holder([&] {
    lock.acquire();
    rv::wait_for([&] { return holder_out.load(); }, rv::milliseconds{3000});
    lock.release();
  });
  rv::wait_for([&] { return false; }, rv::milliseconds{50});
  EXPECT_TRUE(lock.release());  // misuse from this (idle) thread
  std::atomic<bool> t2_in{false};
  rv::Probe t2([&] {
    lock.acquire();
    t2_in.store(true);
    lock.release();
  });
  EXPECT_FALSE(rv::wait_for([&] { return t2_in.load(); },
                            rv::milliseconds{200}));  // still excluded
  holder_out.store(true);
  holder.join();
  t2.join();
  EXPECT_TRUE(t2_in.load());
}
