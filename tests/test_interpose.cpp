// Unit tests for the LiTL-style interposition layer: pthread-shaped
// mutex, runtime algorithm selection, condition-variable compatibility.
#include <gtest/gtest.h>

#include <condition_variable>
#include <mutex>
#include <queue>
#include <thread>

#include "interpose/transparent_mutex.hpp"
#include "runtime/thread_team.hpp"

namespace ri = resilock::interpose;
using resilock::kOriginal;
using resilock::kResilient;

TEST(TransparentMutex, ExplicitAlgorithmSelection) {
  ri::TransparentMutex m("Ticket", kResilient);
  EXPECT_EQ(m.algorithm(), "Ticket");
  EXPECT_EQ(m.resilience(), kResilient);
  m.lock();
  EXPECT_TRUE(m.unlock());
}

TEST(TransparentMutex, DefaultComesFromEnvironmentOrMcs) {
  ri::TransparentMutex m;
  EXPECT_TRUE(resilock::is_lock_name(m.algorithm()));
}

TEST(TransparentMutex, ErrorcheckSemanticsOnMisuse) {
  ri::TransparentMutex m("MCS", kResilient);
  EXPECT_FALSE(m.unlock());  // unlock without lock -> error, not corruption
  m.lock();
  EXPECT_TRUE(m.unlock());
  EXPECT_FALSE(m.unlock());
}

TEST(TransparentMutex, TryLockSemantics) {
  ri::TransparentMutex m("TAS", kOriginal);
  EXPECT_TRUE(m.has_native_trylock());
  EXPECT_TRUE(m.try_lock());
  std::thread t([&] { EXPECT_FALSE(m.try_lock()); });
  t.join();
  EXPECT_TRUE(m.unlock());
}

TEST(TransparentMutex, MutualExclusionAcrossAlgorithms) {
  for (const char* algo : {"TAS", "Ticket", "MCS", "CLH", "HMCS"}) {
    ri::TransparentMutex m(algo, kResilient);
    std::uint64_t counter = 0;
    resilock::runtime::ThreadTeam::run(4, [&](std::uint32_t) {
      for (int i = 0; i < 500; ++i) {
        m.lock();
        ++counter;
        ASSERT_TRUE(m.unlock());
      }
    });
    EXPECT_EQ(counter, 2000u) << algo;
  }
}

TEST(TransparentMutex, WorksWithStdLockGuard) {
  ri::TransparentMutex m("Ticket", kResilient);
  std::uint64_t counter = 0;
  resilock::runtime::ThreadTeam::run(4, [&](std::uint32_t) {
    for (int i = 0; i < 500; ++i) {
      std::lock_guard<ri::TransparentMutex> g(m);
      ++counter;
    }
  });
  EXPECT_EQ(counter, 2000u);
}

TEST(TransparentMutex, ConditionVariableProducerConsumer) {
  // LiTL interposes condition variables too; std::condition_variable_any
  // over TransparentMutex covers the same pattern (dedup/ferret-style
  // pipeline stages).
  ri::TransparentMutex m("MCS", kResilient);
  std::condition_variable_any cv;
  std::queue<int> q;
  constexpr int kItems = 200;
  int consumed = 0;
  std::thread consumer([&] {
    for (int i = 0; i < kItems; ++i) {
      std::unique_lock<ri::TransparentMutex> lk(m);
      cv.wait(lk, [&] { return !q.empty(); });
      EXPECT_EQ(q.front(), i);
      q.pop();
      ++consumed;
    }
  });
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) {
      {
        std::unique_lock<ri::TransparentMutex> lk(m);
        q.push(i);
      }
      cv.notify_one();
    }
  });
  producer.join();
  consumer.join();
  EXPECT_EQ(consumed, kItems);
}

TEST(TransparentMutex, ManyInstancesIndependent) {
  // The PARSEC fluidanimate note (§2.3): millions of lock instances;
  // verify a large-ish population behaves independently.
  constexpr int kLocks = 256;
  std::vector<std::unique_ptr<ri::TransparentMutex>> locks;
  for (int i = 0; i < kLocks; ++i)
    locks.push_back(
        std::make_unique<ri::TransparentMutex>("Ticket", kResilient));
  std::vector<std::uint64_t> counters(kLocks, 0);
  resilock::runtime::ThreadTeam::run(4, [&](std::uint32_t tid) {
    for (int i = 0; i < 4000; ++i) {
      const int k = (i * 7 + static_cast<int>(tid)) % kLocks;
      locks[k]->lock();
      ++counters[k];
      ASSERT_TRUE(locks[k]->unlock());
    }
  });
  std::uint64_t total = 0;
  for (auto c : counters) total += c;
  EXPECT_EQ(total, 16000u);
}
