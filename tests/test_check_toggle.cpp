// Tests for the §5 escape hatch: disabling the unbalanced-unlock check
// so that designs where one thread acquires and another releases are not
// flagged. With checks disabled a resilient lock releases exactly like
// the original protocol.
//
// NOTE: set_misuse_checks() is process-global; every test here scopes
// the toggle in a MisuseCheckGuard so early exits (failed ASSERTs)
// cannot leak the setting into later tests, and a fixture double-checks.
#include <gtest/gtest.h>

#include <thread>

#include "core/hbo.hpp"
#include "core/lock_registry.hpp"
#include "core/tas.hpp"
#include "core/ticket.hpp"
#include "runtime/thread_team.hpp"

using namespace resilock;

class CheckToggle : public ::testing::Test {
 protected:
  void TearDown() override { set_misuse_checks(true); }
};

TEST_F(CheckToggle, DefaultIsEnabled) {
  EXPECT_TRUE(misuse_checks_enabled());
}

TEST_F(CheckToggle, GuardRestoresOnScopeExit) {
  ASSERT_TRUE(misuse_checks_enabled());
  {
    MisuseCheckGuard off(false);
    EXPECT_FALSE(misuse_checks_enabled());
    {
      MisuseCheckGuard on(true);  // nests: inner guard restores to false
      EXPECT_TRUE(misuse_checks_enabled());
    }
    EXPECT_FALSE(misuse_checks_enabled());
  }
  EXPECT_TRUE(misuse_checks_enabled());
}

TEST_F(CheckToggle, DisabledTasAllowsCrossThreadRelease) {
  // The §5 use case: acquire on one thread, release on another.
  TatasLockResilient lock;
  lock.acquire();
  {
    MisuseCheckGuard off(false);
    std::thread t([&] { EXPECT_TRUE(lock.release()); });
    t.join();
    EXPECT_FALSE(lock.is_locked());  // release really happened
  }
  // Back to errorcheck behavior.
  EXPECT_FALSE(lock.release());
}

TEST_F(CheckToggle, DisabledTicketAllowsCrossThreadRelease) {
  TicketLockResilient lock;
  lock.acquire();
  {
    MisuseCheckGuard off(false);
    std::thread t([&] { EXPECT_TRUE(lock.release()); });
    t.join();
  }
  lock.acquire();  // the cross-thread release kept the queue consistent
  EXPECT_TRUE(lock.release());
}

TEST_F(CheckToggle, DisabledHboAllowsCrossThreadRelease) {
  HboLockResilient lock(platform::Topology::uniform(2, 2));
  lock.acquire();
  {
    MisuseCheckGuard off(false);
    std::thread t([&] { EXPECT_TRUE(lock.release()); });
    t.join();
  }
  EXPECT_TRUE(lock.try_acquire());
  EXPECT_TRUE(lock.release());
}

TEST_F(CheckToggle, ReenablingRestoresDetectionEverywhere) {
  { MisuseCheckGuard off(false); }
  for (const auto& name : lock_names()) {
    if (name == "HCLH") continue;  // immune: nothing to detect
    auto lock = make_lock(name, kResilient);
    lock->acquire();
    ASSERT_TRUE(lock->release()) << name;
    EXPECT_FALSE(lock->release()) << name;
  }
}

TEST_F(CheckToggle, DisabledChecksStillMutualExclusive) {
  // Turning off detection must not affect well-behaved code.
  MisuseCheckGuard off(false);
  auto lock = make_lock("MCS", kResilient);
  std::uint64_t counter = 0;
  runtime::ThreadTeam::run(4, [&](std::uint32_t) {
    for (int i = 0; i < 500; ++i) {
      lock->acquire();
      ++counter;
      ASSERT_TRUE(lock->release());
    }
  });
  EXPECT_EQ(counter, 2000u);
}
