// Tests for the §5 escape hatch: disabling the unbalanced-unlock check
// so that designs where one thread acquires and another releases are not
// flagged. With checks disabled a resilient lock releases exactly like
// the original protocol.
//
// NOTE: set_misuse_checks() is process-global; every test here restores
// the default before finishing (and a fixture guards against early
// exits).
#include <gtest/gtest.h>

#include <thread>

#include "core/hbo.hpp"
#include "core/lock_registry.hpp"
#include "core/tas.hpp"
#include "core/ticket.hpp"
#include "runtime/thread_team.hpp"

using namespace resilock;

class CheckToggle : public ::testing::Test {
 protected:
  void TearDown() override { set_misuse_checks(true); }
};

TEST_F(CheckToggle, DefaultIsEnabled) {
  EXPECT_TRUE(misuse_checks_enabled());
}

TEST_F(CheckToggle, DisabledTasAllowsCrossThreadRelease) {
  // The §5 use case: acquire on one thread, release on another.
  TatasLockResilient lock;
  lock.acquire();
  set_misuse_checks(false);
  std::thread t([&] { EXPECT_TRUE(lock.release()); });
  t.join();
  EXPECT_FALSE(lock.is_locked());  // release really happened
  set_misuse_checks(true);
  // Back to errorcheck behavior.
  EXPECT_FALSE(lock.release());
}

TEST_F(CheckToggle, DisabledTicketAllowsCrossThreadRelease) {
  TicketLockResilient lock;
  lock.acquire();
  set_misuse_checks(false);
  std::thread t([&] { EXPECT_TRUE(lock.release()); });
  t.join();
  set_misuse_checks(true);
  lock.acquire();  // the cross-thread release kept the queue consistent
  EXPECT_TRUE(lock.release());
}

TEST_F(CheckToggle, DisabledHboAllowsCrossThreadRelease) {
  HboLockResilient lock(platform::Topology::uniform(2, 2));
  lock.acquire();
  set_misuse_checks(false);
  std::thread t([&] { EXPECT_TRUE(lock.release()); });
  t.join();
  set_misuse_checks(true);
  EXPECT_TRUE(lock.try_acquire());
  EXPECT_TRUE(lock.release());
}

TEST_F(CheckToggle, ReenablingRestoresDetectionEverywhere) {
  set_misuse_checks(false);
  set_misuse_checks(true);
  for (const auto& name : lock_names()) {
    if (name == "HCLH") continue;  // immune: nothing to detect
    auto lock = make_lock(name, kResilient);
    lock->acquire();
    ASSERT_TRUE(lock->release()) << name;
    EXPECT_FALSE(lock->release()) << name;
  }
}

TEST_F(CheckToggle, DisabledChecksStillMutualExclusive) {
  // Turning off detection must not affect well-behaved code.
  set_misuse_checks(false);
  auto lock = make_lock("MCS", kResilient);
  std::uint64_t counter = 0;
  runtime::ThreadTeam::run(4, [&](std::uint32_t) {
    for (int i = 0; i < 500; ++i) {
      lock->acquire();
      ++counter;
      ASSERT_TRUE(lock->release());
    }
  });
  EXPECT_EQ(counter, 2000u);
}
