// Unit tests for the generic lock machinery: concepts, the uniform
// dispatch helpers, RAII guards, and the PerPid context table used by
// type erasure.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/abql.hpp"
#include "core/any_lock.hpp"
#include "core/clh.hpp"
#include "core/generic.hpp"
#include "core/hemlock.hpp"
#include "core/lock_concepts.hpp"
#include "core/mcs.hpp"
#include "core/tas.hpp"
#include "core/ticket.hpp"
#include "runtime/thread_team.hpp"

using namespace resilock;

// ----------------------------- concepts ---------------------------------

static_assert(PlainLock<TatasLock>);
static_assert(PlainLock<TicketLockResilient>);
static_assert(PlainLock<Hemlock>);
static_assert(!PlainLock<McsLock>);  // needs a context
static_assert(ContextLock<McsLock>);
static_assert(ContextLock<ClhLockResilient>);
static_assert(ContextLock<AndersonLock>);
static_assert(!ContextLock<TatasLock>);
static_assert(TryLockable<TatasLock>);
static_assert(TryContextLockable<McsLock>);
static_assert(!TryLockable<McsLock>);

static_assert(std::is_same_v<context_of_t<TatasLock>, NoContext>);
static_assert(std::is_same_v<context_of_t<McsLock>, McsLock::QNode>);

static_assert(generic_has_trylock<TatasLock>());
static_assert(generic_has_trylock<McsLock>());
static_assert(!generic_has_trylock<ClhLock>());

TEST(Concepts, CompileTimeChecksHold) { SUCCEED(); }

// ------------------------- generic dispatch -----------------------------

TEST(GenericDispatch, PlainLockRoundTrip) {
  TatasLockResilient lock;
  context_of_t<TatasLockResilient> ctx;
  generic_acquire(lock, ctx);
  EXPECT_TRUE(generic_release(lock, ctx));
  EXPECT_FALSE(generic_release(lock, ctx));
}

TEST(GenericDispatch, ContextLockRoundTrip) {
  McsLockResilient lock;
  context_of_t<McsLockResilient> ctx;
  generic_acquire(lock, ctx);
  EXPECT_TRUE(generic_release(lock, ctx));
  EXPECT_FALSE(generic_release(lock, ctx));
}

TEST(GenericDispatch, TryAcquireBothFamilies) {
  TatasLock plain;
  context_of_t<TatasLock> pc;
  EXPECT_TRUE(generic_try_acquire(plain, pc));
  EXPECT_FALSE(generic_try_acquire(plain, pc));
  EXPECT_TRUE(generic_release(plain, pc));

  McsLock ctx_lock;
  context_of_t<McsLock> a, b;
  EXPECT_TRUE(generic_try_acquire(ctx_lock, a));
  EXPECT_FALSE(generic_try_acquire(ctx_lock, b));
  EXPECT_TRUE(generic_release(ctx_lock, a));
}

TEST(GenericDispatch, CohortHooksBothArities) {
  TicketLock ticket;  // has_waiters() without context
  context_of_t<TicketLock> tc;
  generic_acquire(ticket, tc);
  EXPECT_FALSE(generic_has_waiters(ticket, tc));
  EXPECT_TRUE(generic_owned_by_caller(ticket, tc));  // original: true
  generic_release(ticket, tc);

  McsLockResilient mcs;  // has_waiters(ctx)
  context_of_t<McsLockResilient> mc;
  generic_acquire(mcs, mc);
  EXPECT_FALSE(generic_has_waiters(mcs, mc));
  EXPECT_TRUE(generic_owned_by_caller(mcs, mc));
  generic_release(mcs, mc);
  EXPECT_FALSE(generic_owned_by_caller(mcs, mc));  // resilient: checked
}

// ------------------------------ guards ----------------------------------

TEST(Guards, LockGuardReleasesOnScopeExit) {
  TatasLockResilient lock;
  {
    LockGuard g(lock);
    EXPECT_TRUE(lock.is_locked());
  }
  EXPECT_FALSE(lock.is_locked());
}

TEST(Guards, CtxGuardReleasesOnScopeExit) {
  McsLockResilient lock;
  McsLockResilient::QNode node;
  {
    CtxGuard g(lock, node);
    McsLockResilient::QNode probe;
    EXPECT_FALSE(lock.try_acquire(probe));  // held by the guard
  }
  McsLockResilient::QNode probe;
  EXPECT_TRUE(lock.try_acquire(probe));  // released
  EXPECT_TRUE(lock.release(probe));
}

// ------------------------------ PerPid -----------------------------------

TEST(PerPid, SameThreadGetsSameSlot) {
  PerPid<int> table;
  int* a = &table.mine();
  int* b = &table.mine();
  EXPECT_EQ(a, b);
}

TEST(PerPid, DistinctConcurrentThreadsGetDistinctSlots) {
  PerPid<int> table;
  std::atomic<int*> slots[4] = {};
  std::atomic<int> arrived{0};
  runtime::ThreadTeam::run(4, [&](std::uint32_t tid) {
    slots[tid].store(&table.mine());
    arrived.fetch_add(1);
    // Hold the thread (and its pid) alive until everyone registered.
    while (arrived.load() != 4) std::this_thread::yield();
  });
  for (int i = 0; i < 4; ++i) {
    for (int j = i + 1; j < 4; ++j) {
      EXPECT_NE(slots[i].load(), slots[j].load());
    }
  }
}

TEST(PerPid, SlotsAreDefaultInitialized) {
  struct Tagged {
    int value = 42;
  };
  PerPid<Tagged> table;
  EXPECT_EQ(table.mine().value, 42);
  table.mine().value = 7;
  EXPECT_EQ(table.mine().value, 7);  // persists for this thread
}
