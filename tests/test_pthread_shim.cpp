// Unit tests for the C-style pthread shim: init/lock/trylock/unlock/
// destroy with errorcheck semantics (EPERM on unbalanced unlock, §7).
#include <gtest/gtest.h>

#include <cerrno>
#include <thread>

#include "interpose/pthread_shim.hpp"
#include "runtime/thread_team.hpp"

using namespace resilock::interpose;

TEST(PthreadShim, InitLockUnlockDestroy) {
  rl_mutex_t m{};
  ASSERT_EQ(rl_mutex_init(&m, "MCS", 1), 0);
  EXPECT_EQ(rl_mutex_lock(&m), 0);
  EXPECT_EQ(rl_mutex_unlock(&m), 0);
  EXPECT_EQ(rl_mutex_destroy(&m), 0);
}

TEST(PthreadShim, UnknownAlgorithmRejected) {
  rl_mutex_t m{};
  EXPECT_EQ(rl_mutex_init(&m, "NoSuchLock", 1), EINVAL);
  EXPECT_EQ(rl_mutex_init(nullptr, "MCS", 1), EINVAL);
}

TEST(PthreadShim, NullAlgorithmUsesEnvironmentDefault) {
  rl_mutex_t m{};
  ASSERT_EQ(rl_mutex_init(&m, nullptr, 1), 0);
  EXPECT_EQ(rl_mutex_lock(&m), 0);
  EXPECT_EQ(rl_mutex_unlock(&m), 0);
  EXPECT_EQ(rl_mutex_destroy(&m), 0);
}

TEST(PthreadShim, ErrorcheckSemanticsEPERM) {
  rl_mutex_t m{};
  ASSERT_EQ(rl_mutex_init(&m, "Ticket", 1), 0);
  EXPECT_EQ(rl_mutex_unlock(&m), EPERM);  // unlock without lock
  EXPECT_EQ(rl_mutex_lock(&m), 0);
  std::thread t([&] { EXPECT_EQ(rl_mutex_unlock(&m), EPERM); });
  t.join();
  EXPECT_EQ(rl_mutex_unlock(&m), 0);
  EXPECT_EQ(rl_mutex_destroy(&m), 0);
}

TEST(PthreadShim, TrylockEBUSY) {
  rl_mutex_t m{};
  ASSERT_EQ(rl_mutex_init(&m, "TAS", 0), 0);
  EXPECT_EQ(rl_mutex_trylock(&m), 0);
  std::thread t([&] { EXPECT_EQ(rl_mutex_trylock(&m), EBUSY); });
  t.join();
  EXPECT_EQ(rl_mutex_unlock(&m), 0);
  EXPECT_EQ(rl_mutex_destroy(&m), 0);
}

TEST(PthreadShim, UseAfterDestroyRejected) {
  rl_mutex_t m{};
  ASSERT_EQ(rl_mutex_init(&m, "MCS", 1), 0);
  ASSERT_EQ(rl_mutex_destroy(&m), 0);
  EXPECT_EQ(rl_mutex_lock(&m), EINVAL);
  EXPECT_EQ(rl_mutex_unlock(&m), EINVAL);
  EXPECT_EQ(rl_mutex_destroy(&m), EBUSY);
}

TEST(PthreadShim, MutualExclusionThroughShim) {
  rl_mutex_t m{};
  ASSERT_EQ(rl_mutex_init(&m, "CLH", 1), 0);
  std::uint64_t counter = 0;
  resilock::runtime::ThreadTeam::run(4, [&](std::uint32_t) {
    for (int i = 0; i < 1000; ++i) {
      ASSERT_EQ(rl_mutex_lock(&m), 0);
      ++counter;
      ASSERT_EQ(rl_mutex_unlock(&m), 0);
    }
  });
  EXPECT_EQ(counter, 4000u);
  EXPECT_EQ(rl_mutex_destroy(&m), 0);
}
