// Unit tests for the C-style pthread shim: init/lock/trylock/unlock/
// destroy with errorcheck semantics (EPERM on unbalanced unlock, §7).
#include <gtest/gtest.h>

#include <cerrno>
#include <thread>

#include "interpose/pthread_shim.hpp"
#include "lockdep/lockdep.hpp"
#include "runtime/thread_team.hpp"

using namespace resilock::interpose;

TEST(PthreadShim, InitLockUnlockDestroy) {
  rl_mutex_t m{};
  ASSERT_EQ(rl_mutex_init(&m, "MCS", 1), 0);
  EXPECT_EQ(rl_mutex_lock(&m), 0);
  EXPECT_EQ(rl_mutex_unlock(&m), 0);
  EXPECT_EQ(rl_mutex_destroy(&m), 0);
}

TEST(PthreadShim, UnknownAlgorithmRejected) {
  rl_mutex_t m{};
  EXPECT_EQ(rl_mutex_init(&m, "NoSuchLock", 1), EINVAL);
  EXPECT_EQ(rl_mutex_init(nullptr, "MCS", 1), EINVAL);
}

TEST(PthreadShim, NullAlgorithmUsesEnvironmentDefault) {
  rl_mutex_t m{};
  ASSERT_EQ(rl_mutex_init(&m, nullptr, 1), 0);
  EXPECT_EQ(rl_mutex_lock(&m), 0);
  EXPECT_EQ(rl_mutex_unlock(&m), 0);
  EXPECT_EQ(rl_mutex_destroy(&m), 0);
}

TEST(PthreadShim, ErrorcheckSemanticsEPERM) {
  rl_mutex_t m{};
  ASSERT_EQ(rl_mutex_init(&m, "Ticket", 1), 0);
  EXPECT_EQ(rl_mutex_unlock(&m), EPERM);  // unlock without lock
  EXPECT_EQ(rl_mutex_lock(&m), 0);
  std::thread t([&] { EXPECT_EQ(rl_mutex_unlock(&m), EPERM); });
  t.join();
  EXPECT_EQ(rl_mutex_unlock(&m), 0);
  EXPECT_EQ(rl_mutex_destroy(&m), 0);
}

TEST(PthreadShim, TrylockEBUSY) {
  rl_mutex_t m{};
  ASSERT_EQ(rl_mutex_init(&m, "TAS", 0), 0);
  EXPECT_EQ(rl_mutex_trylock(&m), 0);
  std::thread t([&] { EXPECT_EQ(rl_mutex_trylock(&m), EBUSY); });
  t.join();
  EXPECT_EQ(rl_mutex_unlock(&m), 0);
  EXPECT_EQ(rl_mutex_destroy(&m), 0);
}

TEST(PthreadShim, UseAfterDestroyRejected) {
  rl_mutex_t m{};
  ASSERT_EQ(rl_mutex_init(&m, "MCS", 1), 0);
  ASSERT_EQ(rl_mutex_destroy(&m), 0);
  EXPECT_EQ(rl_mutex_lock(&m), EINVAL);
  EXPECT_EQ(rl_mutex_unlock(&m), EINVAL);
  EXPECT_EQ(rl_mutex_destroy(&m), EBUSY);
}

// ---------------------------------------------------------------------
// pthread_rwlock-shaped trylocks (EBUSY semantics; no lockdep edges).
// ---------------------------------------------------------------------

TEST(RwlockShim, TrylocksUncontendedSucceedAndUnlockRoutes) {
  rl_rwlock_t rw{};
  ASSERT_EQ(rl_rwlock_init(&rw, "np", 1), 0);
  EXPECT_EQ(rl_rwlock_tryrdlock(&rw), 0);
  EXPECT_EQ(rl_rwlock_unlock(&rw), 0);
  EXPECT_EQ(rl_rwlock_trywrlock(&rw), 0);
  EXPECT_EQ(rl_rwlock_unlock(&rw), 0);
  // Post-trylock misuse is still errorcheck'd.
  EXPECT_EQ(rl_rwlock_unlock(&rw), EPERM);
  EXPECT_EQ(rl_rwlock_destroy(&rw), 0);
}

TEST(RwlockShim, TrylockEBUSYAgainstAWriter) {
  rl_rwlock_t rw{};
  ASSERT_EQ(rl_rwlock_init(&rw, "np", 1), 0);
  ASSERT_EQ(rl_rwlock_wrlock(&rw), 0);
  std::thread t([&] {
    EXPECT_EQ(rl_rwlock_tryrdlock(&rw), EBUSY);
    EXPECT_EQ(rl_rwlock_trywrlock(&rw), EBUSY);
  });
  t.join();
  EXPECT_EQ(rl_rwlock_unlock(&rw), 0);
  EXPECT_EQ(rl_rwlock_destroy(&rw), 0);
}

TEST(RwlockShim, TrywrlockEBUSYAgainstReadersAndBacksOutCleanly) {
  rl_rwlock_t rw{};
  ASSERT_EQ(rl_rwlock_init(&rw, "np", 1), 0);
  ASSERT_EQ(rl_rwlock_rdlock(&rw), 0);
  std::thread t([&] {
    // A live reader: the write attempt would spin on the indicator —
    // EBUSY instead, with the cohort lock released on the way out.
    EXPECT_EQ(rl_rwlock_trywrlock(&rw), EBUSY);
    // The backout left the lock fully takeable for readers.
    EXPECT_EQ(rl_rwlock_tryrdlock(&rw), 0);
    EXPECT_EQ(rl_rwlock_unlock(&rw), 0);
  });
  t.join();
  EXPECT_EQ(rl_rwlock_unlock(&rw), 0);
  // ...and for a writer once the readers drained.
  EXPECT_EQ(rl_rwlock_trywrlock(&rw), 0);
  EXPECT_EQ(rl_rwlock_unlock(&rw), 0);
  EXPECT_EQ(rl_rwlock_destroy(&rw), 0);
}

TEST(RwlockShim, TrylocksAddNoLockdepEdges) {
  using resilock::lockdep::Graph;
  resilock::lockdep::LockdepModeGuard mode(
      resilock::lockdep::LockdepMode::kReport);
  rl_mutex_t m{};
  rl_rwlock_t rw{};
  ASSERT_EQ(rl_mutex_init(&m, "MCS", 1), 0);
  ASSERT_EQ(rl_rwlock_init(&rw, "np", 1), 0);
  // Prime both classes (first acquires register them).
  ASSERT_EQ(rl_mutex_lock(&m), 0);
  ASSERT_EQ(rl_mutex_unlock(&m), 0);
  ASSERT_EQ(rl_rwlock_tryrdlock(&rw), 0);
  ASSERT_EQ(rl_rwlock_unlock(&rw), 0);
  const std::uint64_t edges_before = Graph::instance().stats().edges;
  ASSERT_EQ(rl_mutex_lock(&m), 0);
  // Held-while-trylocking: a blocking rdlock would record an order
  // edge here; the trylock must not.
  ASSERT_EQ(rl_rwlock_tryrdlock(&rw), 0);
  ASSERT_EQ(rl_rwlock_unlock(&rw), 0);
  ASSERT_EQ(rl_rwlock_trywrlock(&rw), 0);
  ASSERT_EQ(rl_rwlock_unlock(&rw), 0);
  ASSERT_EQ(rl_mutex_unlock(&m), 0);
  EXPECT_EQ(Graph::instance().stats().edges, edges_before);
  EXPECT_EQ(rl_rwlock_destroy(&rw), 0);
  EXPECT_EQ(rl_mutex_destroy(&m), 0);
}

TEST(RwlockShim, TrylocksAcrossPreferences) {
  // The rp/wp variants route their preference barriers through the try
  // paths too (pending-writer deference, reader backoff).
  for (const char* pref : {"rp", "wp"}) {
    rl_rwlock_t rw{};
    ASSERT_EQ(rl_rwlock_init(&rw, pref, 0), 0) << pref;
    ASSERT_EQ(rl_rwlock_trywrlock(&rw), 0) << pref;
    std::thread t([&] { EXPECT_EQ(rl_rwlock_trywrlock(&rw), EBUSY); });
    t.join();
    EXPECT_EQ(rl_rwlock_unlock(&rw), 0) << pref;
    EXPECT_EQ(rl_rwlock_tryrdlock(&rw), 0) << pref;
    EXPECT_EQ(rl_rwlock_unlock(&rw), 0) << pref;
    EXPECT_EQ(rl_rwlock_destroy(&rw), 0) << pref;
  }
}

TEST(PthreadShim, MutualExclusionThroughShim) {
  rl_mutex_t m{};
  ASSERT_EQ(rl_mutex_init(&m, "CLH", 1), 0);
  std::uint64_t counter = 0;
  resilock::runtime::ThreadTeam::run(4, [&](std::uint32_t) {
    for (int i = 0; i < 1000; ++i) {
      ASSERT_EQ(rl_mutex_lock(&m), 0);
      ++counter;
      ASSERT_EQ(rl_mutex_unlock(&m), 0);
    }
  });
  EXPECT_EQ(counter, 4000u);
  EXPECT_EQ(rl_mutex_destroy(&m), 0);
}
