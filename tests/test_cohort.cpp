// Unit tests for the cohort lock family (§3.8.4) and the partitioned
// ticket lock (its C-RW-NP substrate).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/cohort.hpp"
#include "lock_test_util.hpp"
#include "verify/checkers.hpp"

using namespace resilock;
namespace rt = resilock::test;

namespace {
const platform::Topology& two_domains() {
  static const auto topo = platform::Topology::uniform(2, 2);
  return topo;
}
}  // namespace

// ----------------------- Partitioned ticket ----------------------------

template <typename L>
class PtktTest : public ::testing::Test {};
using PtktTypes =
    ::testing::Types<PartitionedTicketLock, PartitionedTicketLockResilient>;
TYPED_TEST_SUITE(PtktTest, PtktTypes);

TYPED_TEST(PtktTest, SingleThreadRoundTrips) {
  TypeParam lock(4);
  for (int i = 0; i < 50; ++i) {  // wraps the grant partitions many times
    lock.acquire();
    EXPECT_TRUE(lock.release());
  }
}

TYPED_TEST(PtktTest, MutualExclusionUnderContention) {
  TypeParam lock(8);
  rt::mutex_stress(lock, 4, 2000);
}

TYPED_TEST(PtktTest, ThreadObliviousRelease) {
  // Cohort property (a): a different thread may release.
  TypeParam lock(4);
  lock.acquire();
  std::thread t([&] { EXPECT_TRUE(lock.release_thread_oblivious()); });
  t.join();
  lock.acquire();  // works because the release really happened
  EXPECT_TRUE(lock.release());
}

TYPED_TEST(PtktTest, HasWaitersReflectsQueue) {
  TypeParam lock(4);
  lock.acquire();
  EXPECT_FALSE(lock.has_waiters());
  std::thread t([&] {
    lock.acquire();
    lock.release_thread_oblivious();
  });
  while (!lock.has_waiters()) std::this_thread::yield();
  EXPECT_TRUE(lock.release_thread_oblivious());
  t.join();
}

TEST(PtktResilient, NonOwnerReleaseRefused) {
  PartitionedTicketLockResilient lock(4);
  EXPECT_FALSE(lock.release());
  lock.acquire();
  std::thread t([&] { EXPECT_FALSE(lock.release()); });
  t.join();
  EXPECT_TRUE(lock.release());
}

// --------------------------- Cohort locks ------------------------------

template <typename L>
class CohortTest : public ::testing::Test {};
using CohortTypes = ::testing::Types<
    CBoBoLock<kOriginal>, CBoBoLock<kResilient>, CTktTktLock<kOriginal>,
    CTktTktLock<kResilient>, CMcsMcsLock<kOriginal>, CMcsMcsLock<kResilient>,
    CPtktTktLock<kOriginal>, CPtktTktLock<kResilient>>;
TYPED_TEST_SUITE(CohortTest, CohortTypes);

TYPED_TEST(CohortTest, SingleThreadRoundTrips) {
  TypeParam lock(two_domains());
  typename TypeParam::Context ctx;
  for (int i = 0; i < 100; ++i) {
    lock.acquire(ctx);
    EXPECT_TRUE(lock.release(ctx));
  }
}

TYPED_TEST(CohortTest, MutualExclusionTwoDomains) {
  TypeParam lock(two_domains());
  rt::mutex_stress(lock, 4, 1000);
}

TYPED_TEST(CohortTest, MutualExclusionSingleDomain) {
  TypeParam lock(platform::Topology::uniform(1, 64));
  rt::mutex_stress(lock, 4, 1000);
}

TYPED_TEST(CohortTest, MutualExclusionLowPassBudget) {
  // max_passes=1 forces constant global handoff.
  TypeParam lock(two_domains(), 1);
  rt::mutex_stress(lock, 4, 800);
}

TEST(CohortResilient, MisuseRefusedBeforeGlobalLockIsTouched) {
  CTktTktLock<kResilient> lock(two_domains());
  CTktTktLock<kResilient>::Context rogue;
  EXPECT_FALSE(lock.release(rogue));
  // Lock remains fully functional (the original corrupts both levels).
  CTktTktLock<kResilient>::Context ctx;
  lock.acquire(ctx);
  EXPECT_TRUE(lock.release(ctx));
}

TEST(CohortResilient, McsLocalMisuseRefused) {
  CMcsMcsLock<kResilient> lock(two_domains());
  CMcsMcsLock<kResilient>::Context rogue;
  EXPECT_FALSE(lock.release(rogue));  // original would strand the caller
  CMcsMcsLock<kResilient>::Context ctx;
  lock.acquire(ctx);
  EXPECT_TRUE(lock.release(ctx));
}

TEST(CohortHandoff, GlobalLockInheritedWithinCohort) {
  // Two same-domain threads alternating: the pass count must allow the
  // second to enter without re-acquiring the global lock (observable
  // only as: it works and stays mutual-exclusive under our checker).
  CTktTktLock<kOriginal> lock(platform::Topology::uniform(1, 64));
  rt::mutex_stress(lock, 2, 2000);
}

TEST(BoCohortLocal, WaiterCountTracksContention) {
  BoCohortLocal<kOriginal> local;
  local.acquire();
  EXPECT_FALSE(local.has_waiters());
  std::atomic<bool> entered{false};
  std::thread t([&] {
    local.acquire();
    entered.store(true);
    local.release();
  });
  while (!local.has_waiters()) std::this_thread::yield();
  EXPECT_FALSE(entered.load());
  EXPECT_TRUE(local.release());
  t.join();
}
