// Unit tests for the MCS (§3.4) and CLH (§3.5) queue locks.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/clh.hpp"
#include "core/mcs.hpp"
#include "lock_test_util.hpp"
#include "verify/access.hpp"
#include "verify/checkers.hpp"

using namespace resilock;
namespace rt = resilock::test;
namespace rv = resilock::verify;

// ------------------------------ MCS -----------------------------------

template <typename L>
class McsTest : public ::testing::Test {};
using McsTypes = ::testing::Types<McsLock, McsLockResilient>;
TYPED_TEST_SUITE(McsTest, McsTypes);

TYPED_TEST(McsTest, SingleThreadRoundTripsWithReusedNode) {
  TypeParam lock;
  typename TypeParam::QNode node;
  for (int i = 0; i < 100; ++i) {
    lock.acquire(node);
    EXPECT_TRUE(lock.release(node));
  }
}

TYPED_TEST(McsTest, MutualExclusionUnderContention) {
  TypeParam lock;
  rt::mutex_stress(lock, 4, 2000);
}

TYPED_TEST(McsTest, TryAcquireSemantics) {
  TypeParam lock;
  typename TypeParam::QNode a, b;
  EXPECT_TRUE(lock.try_acquire(a));
  EXPECT_FALSE(lock.try_acquire(b));
  EXPECT_TRUE(lock.release(a));
  EXPECT_TRUE(lock.try_acquire(b));
  EXPECT_TRUE(lock.release(b));
}

TYPED_TEST(McsTest, HandoffThroughExplicitQueue) {
  // T1 holds; T2 enqueues; T1's release must hand off to T2 (not to the
  // world at large).
  TypeParam lock;
  typename TypeParam::QNode a;
  lock.acquire(a);
  std::atomic<bool> t2_entered{false};
  std::thread t2([&] {
    typename TypeParam::QNode b;
    lock.acquire(b);
    t2_entered.store(true);
    lock.release(b);
  });
  while (VerifyAccess::mcs_tail(lock) == &a) std::this_thread::yield();
  EXPECT_FALSE(t2_entered.load());
  EXPECT_TRUE(lock.release(a));
  t2.join();
  EXPECT_TRUE(t2_entered.load());
}

TYPED_TEST(McsTest, CohortHooks) {
  TypeParam lock;
  typename TypeParam::QNode a;
  lock.acquire(a);
  EXPECT_FALSE(lock.has_waiters(a));
  std::thread t2([&] {
    typename TypeParam::QNode b;
    lock.acquire(b);
    lock.release(b);
  });
  while (!lock.has_waiters(a)) std::this_thread::yield();
  EXPECT_TRUE(lock.release(a));
  t2.join();
}

TEST(McsResilient, FreshNodeReleaseRefusedInstantly) {
  McsLockResilient lock;
  McsLockResilient::QNode fresh;
  EXPECT_FALSE(lock.release(fresh));  // original would spin forever here
}

TEST(McsResilient, StaleNextIsScrubbedByRelease) {
  // After a normal contended episode the resilient release nulls I.next,
  // so the §3.4 case-3 misuse cannot reach a re-enqueued node.
  McsLockResilient lock;
  McsLockResilient::QNode a;
  lock.acquire(a);
  std::thread t2([&] {
    McsLockResilient::QNode b;
    lock.acquire(b);
    lock.release(b);
  });
  while (VerifyAccess::mcs_tail(lock) == &a) std::this_thread::yield();
  EXPECT_TRUE(lock.release(a));
  t2.join();
  EXPECT_EQ(a.next.load(), nullptr);
  EXPECT_FALSE(a.locked.load());
  EXPECT_FALSE(lock.release(a));  // and the misuse is detected
}

TEST(McsOriginal, DoubleReleaseAfterUncontendedEpisodeSpins) {
  // §3.4 case 1: I.next is null and the tail CAS fails -> Tm spins.
  McsLock lock;
  McsLock::QNode a, rescue;
  lock.acquire(a);
  EXPECT_TRUE(lock.release(a));
  rv::Probe tm([&] { lock.release(a); });
  EXPECT_FALSE(tm.finished_within());
  VerifyAccess::mcs_link_successor<kOriginal>(a, rescue);
  tm.join();
}

// ------------------------------ CLH -----------------------------------

template <typename L>
class ClhTest : public ::testing::Test {};
using ClhTypes = ::testing::Types<ClhLock, ClhLockResilient>;
TYPED_TEST_SUITE(ClhTest, ClhTypes);

TYPED_TEST(ClhTest, SingleThreadRoundTripsRecyclingNodes) {
  TypeParam lock;
  typename TypeParam::Context ctx;
  for (int i = 0; i < 100; ++i) {
    lock.acquire(ctx);
    EXPECT_TRUE(lock.release(ctx));
  }
}

TYPED_TEST(ClhTest, MutualExclusionUnderContention) {
  TypeParam lock;
  rt::mutex_stress(lock, 4, 2000);
}

TYPED_TEST(ClhTest, FifoHandoffBetweenTwoThreads) {
  TypeParam lock;
  typename TypeParam::Context c1;
  lock.acquire(c1);
  std::atomic<bool> entered{false};
  std::thread t([&] {
    typename TypeParam::Context c2;
    lock.acquire(c2);
    entered.store(true);
    lock.release(c2);
  });
  // Give the waiter time to enqueue; it must not enter while we hold.
  rv::wait_for([&] { return false; }, rv::milliseconds{50});
  EXPECT_FALSE(entered.load());
  EXPECT_TRUE(lock.release(c1));
  t.join();
  EXPECT_TRUE(entered.load());
}

TEST(ClhResilient, FreshContextReleaseRefused) {
  ClhLockResilient lock;
  ClhLockResilient::Context ctx;
  EXPECT_FALSE(lock.release(ctx));  // prev is null: unbalanced
  lock.acquire(ctx);
  EXPECT_TRUE(lock.release(ctx));
  EXPECT_FALSE(lock.release(ctx));  // prev reset by the release
}

TEST(ClhResilient, NoAliasingAfterMisuse) {
  // The Figure 8 root cause is the misuse adopting the predecessor's
  // node; the resilient release must leave the context's node unchanged.
  ClhLockResilient lock;
  ClhLockResilient::Context c;
  lock.acquire(c);
  lock.release(c);
  auto* node_before = VerifyAccess::clh_node<kResilient>(c);
  EXPECT_FALSE(lock.release(c));
  EXPECT_EQ(VerifyAccess::clh_node<kResilient>(c), node_before);
}

TEST(ClhOriginal, MisuseAliasesPredecessorNode) {
  // Figure 8a -> 8b precondition: after the misuse, Tm's context owns
  // the same node as the earlier thread's context.
  ClhLock lock;
  auto c1 = std::make_unique<ClhLock::Context>();
  auto cm = std::make_unique<ClhLock::Context>();
  rv::Probe t1([&] {
    lock.acquire(*c1);
    lock.release(*c1);
  });
  t1.join();
  lock.acquire(*cm);
  lock.release(*cm);
  EXPECT_TRUE(lock.release(*cm));  // misuse, undetected
  EXPECT_EQ(VerifyAccess::clh_node<kOriginal>(*c1),
            VerifyAccess::clh_node<kOriginal>(*cm));
  // De-alias before destruction (each context deletes its node).
  VerifyAccess::clh_node<kOriginal>(*cm) = new ClhLock::QNode;
}
