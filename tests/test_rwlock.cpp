// Unit tests for the ReadIndicator variants and the C-RW-NP/RP/WP
// reader-writer locks (§4).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/rw/crw.hpp"
#include "core/rw/read_indicator.hpp"
#include "platform/thread_registry.hpp"
#include "runtime/barrier.hpp"
#include "runtime/thread_team.hpp"
#include "verify/checkers.hpp"

using namespace resilock;
namespace rv = resilock::verify;

namespace {
const platform::Topology& two_domains() {
  static const auto topo = platform::Topology::uniform(2, 2);
  return topo;
}
}  // namespace

// ------------------------- ReadIndicators ------------------------------

template <typename I>
class IndicatorTest : public ::testing::Test {
 public:
  static I make() {
    if constexpr (std::is_constructible_v<I, const platform::Topology&>) {
      return I(two_domains());
    } else {
      return I();
    }
  }
};
using IndicatorTypes =
    ::testing::Types<CentralReadIndicator, SplitReadIndicator,
                     SnziReadIndicator, CheckedReadIndicator>;
TYPED_TEST_SUITE(IndicatorTest, IndicatorTypes);

TYPED_TEST(IndicatorTest, EmptyInitially) {
  auto ind = TestFixture::make();
  EXPECT_TRUE(ind.is_empty());
}

TYPED_TEST(IndicatorTest, ArriveDepartRoundTrip) {
  auto ind = TestFixture::make();
  const auto pid = platform::self_pid();
  EXPECT_TRUE(ind.arrive(pid));
  EXPECT_FALSE(ind.is_empty());
  EXPECT_TRUE(ind.depart(pid));
  EXPECT_TRUE(ind.is_empty());
}

TYPED_TEST(IndicatorTest, ConcurrentReadersBalanceOut) {
  auto ind = TestFixture::make();
  runtime::ThreadTeam::run(4, [&](std::uint32_t) {
    const auto pid = platform::self_pid();
    for (int i = 0; i < 2000; ++i) {
      ind.arrive(pid);
      ind.depart(pid);
    }
  });
  EXPECT_TRUE(ind.is_empty());
}

TYPED_TEST(IndicatorTest, NonEmptyWhileAnyReaderPresent) {
  auto ind = TestFixture::make();
  std::atomic<bool> go_home{false};
  std::atomic<int> in{0};
  runtime::ThreadTeam::run(3, [&](std::uint32_t tid) {
    const auto pid = platform::self_pid();
    if (tid == 0) {
      // Writer-side observer.
      while (in.load() != 2) std::this_thread::yield();
      EXPECT_FALSE(ind.is_empty());
      go_home.store(true);
    } else {
      ind.arrive(pid);
      in.fetch_add(1);
      while (!go_home.load()) std::this_thread::yield();
      ind.depart(pid);
    }
  });
  EXPECT_TRUE(ind.is_empty());
}

TYPED_TEST(IndicatorTest, IngressEgressChurnUnderConcurrentObserver) {
  // Satellite coverage: hammer arrive/depart from several threads while
  // another thread continuously polls is_empty()/approx_readers(). The
  // observer must never crash or wedge, the population estimate must
  // stay within the live-thread bound, and the indicator must balance
  // once everyone leaves.
  auto ind = TestFixture::make();
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> polls{0};
  constexpr std::uint32_t kChurners = 3;
  runtime::ThreadTeam::run(kChurners + 1, [&](std::uint32_t tid) {
    const auto pid = platform::self_pid();
    if (tid == 0) {  // observer
      while (!stop.load(std::memory_order_acquire)) {
        // No bound asserted mid-churn: split counters and SNZI helpers
        // legitimately over-report in transients (the estimate is
        // telemetry). The point is that concurrent polling is safe.
        (void)ind.is_empty();
        (void)ind.approx_readers();
        polls.fetch_add(1, std::memory_order_relaxed);
      }
    } else {
      for (int i = 0; i < 3000; ++i) {
        ind.arrive(pid);
        if ((i & 7) == 0) std::this_thread::yield();
        ind.depart(pid);
      }
      if (tid == 1) stop.store(true, std::memory_order_release);
    }
  });
  EXPECT_GT(polls.load(), 0u);
  EXPECT_TRUE(ind.is_empty());
  EXPECT_EQ(ind.approx_readers(), 0u);
}

TYPED_TEST(IndicatorTest, ApproxReadersTracksPopulation) {
  // The estimate is the rw contention signal the response engine keys
  // escalation off: it must be 0 when empty, positive while readers
  // are inside, and 0 again after they leave. (SNZI's root counts
  // nonempty leaves — a lower bound — so only >0 is asserted there.)
  auto ind = TestFixture::make();
  EXPECT_EQ(ind.approx_readers(), 0u);
  std::atomic<int> in{0};
  std::atomic<bool> out{false};
  runtime::ThreadTeam::run(3, [&](std::uint32_t) {
    const auto pid = platform::self_pid();
    ind.arrive(pid);
    in.fetch_add(1, std::memory_order_acq_rel);
    while (!out.load(std::memory_order_acquire)) {
      if (in.load(std::memory_order_acquire) == 3 &&
          ind.approx_readers() >= 1) {
        out.store(true, std::memory_order_release);
      }
      std::this_thread::yield();
    }
    ind.depart(pid);
  });
  EXPECT_TRUE(out.load());
  EXPECT_EQ(ind.approx_readers(), 0u);
}

TEST(CheckedIndicator, ApproxReadersIsExactPopcount) {
  CheckedReadIndicator ind(8);
  EXPECT_EQ(ind.approx_readers(), 0u);
  ind.arrive(1);
  ind.arrive(2);
  ind.arrive(5);
  EXPECT_EQ(ind.approx_readers(), 3u);
  ind.depart(2);
  EXPECT_EQ(ind.approx_readers(), 2u);
  ind.depart(1);
  ind.depart(5);
  EXPECT_EQ(ind.approx_readers(), 0u);
}

TEST(CheckedIndicator, DetectsDepartWithoutArrive) {
  CheckedReadIndicator ind;
  EXPECT_FALSE(ind.depart(platform::self_pid()));  // misuse detected
  EXPECT_TRUE(ind.is_empty());                     // and suppressed
}

TEST(CheckedIndicator, DetectsDoubleArrive) {
  CheckedReadIndicator ind;
  const auto pid = platform::self_pid();
  EXPECT_TRUE(ind.arrive(pid));
  EXPECT_FALSE(ind.arrive(pid));
  EXPECT_TRUE(ind.depart(pid));
}

TEST(SplitIndicator, MisuseSkewsForever) {
  // §4: a misused depart makes ingress/egress diverge permanently.
  SplitReadIndicator ind(two_domains());
  EXPECT_TRUE(ind.depart(platform::self_pid()));  // undetected
  EXPECT_FALSE(ind.is_empty());                   // skewed: never empty...
  ind.arrive(platform::self_pid());               // ...until rebalanced
  EXPECT_TRUE(ind.is_empty());
}

TEST(SnziIndicator, ManyArrivalsOneEpisode) {
  SnziReadIndicator ind(two_domains());
  const auto pid = platform::self_pid();
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(ind.arrive(pid));
  EXPECT_FALSE(ind.is_empty());
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(ind.depart(pid));
  EXPECT_TRUE(ind.is_empty());
}

// ----------------------------- C-RW locks ------------------------------

template <typename L>
class CrwTest : public ::testing::Test {};
using CrwTypes = ::testing::Types<
    CrwLock<kOriginal, SplitReadIndicator, RwPreference::kNeutral>,
    CrwLock<kResilient, SplitReadIndicator, RwPreference::kNeutral>,
    CrwLock<kOriginal, CentralReadIndicator, RwPreference::kNeutral>,
    CrwLock<kResilient, SnziReadIndicator, RwPreference::kNeutral>,
    CrwLock<kOriginal, SplitReadIndicator, RwPreference::kReader>,
    CrwLock<kResilient, SplitReadIndicator, RwPreference::kReader>,
    CrwLock<kOriginal, SplitReadIndicator, RwPreference::kWriter>,
    CrwLock<kResilient, SplitReadIndicator, RwPreference::kWriter>,
    CrwNpLockChecked>;
TYPED_TEST_SUITE(CrwTest, CrwTypes);

TYPED_TEST(CrwTest, SingleThreadReadThenWrite) {
  TypeParam rw(two_domains());
  typename TypeParam::Context ctx;
  rw.rlock(ctx);
  EXPECT_TRUE(rw.runlock(ctx));
  rw.wlock(ctx);
  EXPECT_TRUE(rw.wunlock(ctx));
}

TYPED_TEST(CrwTest, WriterExcludesWritersAndReaders) {
  // Mixed stress: writers mutate a plain counter; readers verify the
  // invariant (value only changes under a writer).
  TypeParam rw(two_domains());
  std::uint64_t data = 0;
  rv::MutexChecker wchk;
  std::atomic<bool> reader_saw_torn{false};
  runtime::ThreadTeam::run(4, [&](std::uint32_t tid) {
    typename TypeParam::Context ctx;
    if (tid % 2 == 0) {  // writer
      for (int i = 0; i < 400; ++i) {
        rw.wlock(ctx);
        wchk.enter();
        data += 1;
        wchk.exit();
        ASSERT_TRUE(rw.wunlock(ctx));
      }
    } else {  // reader
      for (int i = 0; i < 400; ++i) {
        rw.rlock(ctx);
        const auto a = data;
        const auto b = data;
        if (a != b) reader_saw_torn.store(true);
        ASSERT_TRUE(rw.runlock(ctx));
      }
    }
  });
  EXPECT_EQ(data, 800u);
  EXPECT_EQ(wchk.max_simultaneous(), 1);
  EXPECT_FALSE(reader_saw_torn.load());
}

TYPED_TEST(CrwTest, ConcurrentReadersOverlap) {
  // Two readers must be able to be inside the read CS simultaneously.
  // Deterministic rendezvous: each reader enters the read CS and waits
  // (bounded) for the other one inside it. A reader-writer lock that
  // wrongly serializes readers can never reach in == 2.
  TypeParam rw(two_domains());
  std::atomic<int> in{0};
  std::atomic<bool> both_seen{false};
  runtime::ThreadTeam::run(2, [&](std::uint32_t) {
    typename TypeParam::Context ctx;
    rw.rlock(ctx);
    in.fetch_add(1);
    if (rv::wait_for([&] { return in.load() == 2; },
                     rv::milliseconds{2000})) {
      both_seen.store(true);
    }
    in.fetch_sub(1);
    rw.runlock(ctx);
  });
  EXPECT_TRUE(both_seen.load());
}

TEST(CrwResilient, WUnlockWithoutWLockRefused) {
  CrwNpLockResilient rw(two_domains());
  CrwNpLockResilient::Context ctx;
  EXPECT_FALSE(rw.wunlock(ctx));
  // Still functional.
  rw.wlock(ctx);
  EXPECT_TRUE(rw.wunlock(ctx));
}

TEST(CrwChecked, RUnlockMisuseDetected) {
  CrwNpLockChecked rw(two_domains());
  CrwNpLockChecked::Context ctx;
  EXPECT_FALSE(rw.runlock(ctx));  // depart without arrive: caught
  rw.rlock(ctx);
  EXPECT_TRUE(rw.runlock(ctx));
}

TEST(CrwOriginal, RUnlockMisuseAdmitsWriterOverReader) {
  // §4 mutex violation, deterministically (also exercised by the
  // misuse-matrix engine; kept here as a focused regression).
  CrwLock<kOriginal, SplitReadIndicator, RwPreference::kNeutral> rw(
      platform::Topology::uniform(1, 64));
  using Ctx = decltype(rw)::Context;
  rv::MutexChecker chk;
  std::atomic<bool> r_out{false};
  rv::Probe reader([&] {
    Ctx c;
    rw.rlock(c);
    chk.enter();
    rv::wait_for([&] { return r_out.load(); }, rv::milliseconds{3000});
    chk.exit();
    rw.runlock(c);
  });
  rv::wait_for([&] { return chk.current() == 1; });
  rv::Probe writer([&] {
    Ctx c;
    rw.wlock(c);
    chk.enter();
    chk.exit();
    rw.wunlock(c);
  });
  rv::wait_for([&] { return false; }, rv::milliseconds{50});
  Ctx rogue;
  EXPECT_TRUE(rw.runlock(rogue));  // undetected misuse
  EXPECT_TRUE(rv::wait_for([&] { return chk.max_simultaneous() >= 2; }));
  r_out.store(true);
  reader.join();
  writer.join();
  rw.indicator().arrive(platform::self_pid());  // rebalance for teardown
}
