// Unit tests for the parking tier (src/park/):
//   * the futex fallback backend (exercised directly — Linux builds
//     dispatch to the native futex, but the fallback compiles
//     everywhere and must behave identically);
//   * wait_word/wake_word spin-then-park hand-off, and the per-lock
//     wiring in MCS, CLH, Ticket and HMCS;
//   * misuse-aware wakeup: a parked waiter orphaned by an absorbed
//     unlock-family misuse is broadcast-woken and proceeds;
//   * park_until deadlines, the TimedGate, and the shim's
//     rl_mutex_timedlock / rl_rwlock_timed{rd,wr}lock entry points
//     (ETIMEDOUT, no lockdep edges on timeout);
//   * lockstat park attribution and the parked>=N response condition.
#include <gtest/gtest.h>

#include <atomic>
#include <cerrno>
#include <cstdint>
#include <ctime>
#include <random>
#include <thread>
#include <vector>

#include "core/clh.hpp"
#include "core/hmcs.hpp"
#include "core/mcs.hpp"
#include "core/rw/crw.hpp"
#include "core/ticket.hpp"
#include "interpose/pthread_shim.hpp"
#include "lockdep/lockdep.hpp"
#include "observe/lockstat.hpp"
#include "park/futex.hpp"
#include "park/parking_lot.hpp"
#include "platform/chrono_to_timespec.hpp"
#include "platform/topology.hpp"
#include "response/response.hpp"
#include "shield/rw_shield.hpp"
#include "shield/shield.hpp"
#include "verify/checkers.hpp"

using namespace resilock;
using namespace resilock::park;
using response::ResponseRulesGuard;
namespace rv = resilock::verify;

namespace {

ParkStatsSnapshot stats() { return ParkStats::instance().snapshot(); }

// A CLOCK_REALTIME abstime `ms` milliseconds out, for the shim tests.
timespec realtime_in_ms(long ms) {
  timespec ts{};
  clock_gettime(CLOCK_REALTIME, &ts);
  ts.tv_nsec += ms * 1000000L;
  while (ts.tv_nsec >= 1000000000L) {
    ts.tv_sec += 1;
    ts.tv_nsec -= 1000000000L;
  }
  return ts;
}

const platform::Topology& two_domains() {
  static const auto topo = platform::Topology::uniform(2, 2);
  return topo;
}

}  // namespace

// ---------------------------------------------------------------------
// Fallback backend.
// ---------------------------------------------------------------------

TEST(ParkFallback, ValueChangedNeverSleeps) {
  std::atomic<std::uint32_t> word{1};
  EXPECT_EQ(fallback::wait(&word, 0, nullptr),
            WaitResult::kValueChanged);
}

TEST(ParkFallback, TimedWaitTimesOut) {
  std::atomic<std::uint32_t> word{0};
  const std::uint64_t deadline =
      platform::monotonic_now_ns() + 50 * 1000000ull;
  // Condvars may wake spuriously; loop on the deadline like a real
  // waiter would.
  for (;;) {
    timespec rel{};
    if (!platform::relative_until(deadline, platform::monotonic_now_ns(),
                                  rel)) {
      break;
    }
    const WaitResult r = fallback::wait(&word, 0, &rel);
    ASSERT_NE(r, WaitResult::kValueChanged);
    if (r == WaitResult::kTimedOut) break;
  }
  EXPECT_GE(platform::monotonic_now_ns() + 1000000ull, deadline);
}

TEST(ParkFallback, WaitUntilHonorsAbsoluteDeadlineExactly) {
  std::atomic<std::uint32_t> word{0};
  const std::uint64_t deadline =
      platform::monotonic_now_ns() + 20 * 1000000ull;  // 20 ms
  for (;;) {
    // Spurious wakes re-wait with the SAME absolute deadline — no
    // relative re-derivation, which is what the old wait_for path
    // rounded up.
    const WaitResult r = fallback::wait_until(&word, 0, deadline);
    ASSERT_NE(r, WaitResult::kValueChanged);
    if (r == WaitResult::kTimedOut) break;
    if (platform::monotonic_now_ns() >= deadline) break;
  }
  // Sub-deadline precision: never a single nanosecond early. (No
  // tight upper bound — scheduling delay after the wake is unbounded
  // on a loaded CI box.)
  EXPECT_GE(platform::monotonic_now_ns(), deadline);
}

TEST(ParkFallback, WakeReachesWaitUntilSleeper) {
  std::atomic<std::uint32_t> word{0};
  std::thread t([&] {
    const std::uint64_t deadline =
        platform::monotonic_now_ns() + 2000 * 1000000ull;
    while (word.load(std::memory_order_acquire) == 0) {
      if (fallback::wait_until(&word, 0, deadline) ==
          WaitResult::kTimedOut) {
        break;
      }
    }
  });
  word.store(1, std::memory_order_release);
  fallback::wake(&word, 1);
  t.join();
  EXPECT_EQ(word.load(std::memory_order_acquire), 1u);
}

TEST(ParkFutex, WaitUntilTimesOutAtMonotonicDeadline) {
  // The dispatch path (FUTEX_WAIT_BITSET absolute-monotonic on Linux,
  // the condvar fallback elsewhere) — same exactness contract.
  std::atomic<std::uint32_t> word{0};
  const std::uint64_t deadline =
      platform::monotonic_now_ns() + 10 * 1000000ull;  // 10 ms
  for (;;) {
    const WaitResult r = futex_wait_until(&word, 0, deadline);
    ASSERT_NE(r, WaitResult::kValueChanged);
    if (r == WaitResult::kTimedOut) break;
    if (platform::monotonic_now_ns() >= deadline) break;
  }
  EXPECT_GE(platform::monotonic_now_ns(), deadline);
}

TEST(ParkFutex, PlainWakeReachesAbsoluteDeadlineWaiter) {
  // Interop both backends guarantee: a plain futex_wake (what every
  // unlock path issues) must reach a waiter parked with an absolute
  // deadline (bitset MATCH_ANY native; shared stripes in fallback).
  std::atomic<std::uint32_t> word{0};
  std::thread t([&] {
    const std::uint64_t deadline =
        platform::monotonic_now_ns() + 2000 * 1000000ull;
    while (word.load(std::memory_order_acquire) == 0) {
      if (futex_wait_until(&word, 0, deadline) ==
          WaitResult::kTimedOut) {
        break;
      }
    }
  });
  word.store(1, std::memory_order_release);
  futex_wake_one(&word);
  t.join();
  EXPECT_EQ(word.load(std::memory_order_acquire), 1u);
}

TEST(ParkFallback, WakeWakesWaiter) {
  std::atomic<std::uint32_t> word{0};
  std::thread t([&] {
    while (word.load(std::memory_order_acquire) == 0) {
      fallback::wait(&word, 0, nullptr);
    }
  });
  // No handshake needed: wake() serializes with a concurrent wait()'s
  // predicate check through the stripe mutex.
  word.store(1, std::memory_order_release);
  fallback::wake(&word, 1);
  t.join();
}

// ---------------------------------------------------------------------
// wait_word / wake_word.
// ---------------------------------------------------------------------

TEST(ParkWord, GrantedWordReturnsImmediately) {
  ParkingGuard park(true);
  std::atomic<std::uint32_t> word{kWordGranted};
  EXPECT_EQ(wait_word(word, nullptr), kWordGranted);
}

TEST(ParkWord, ParkedWaiterWokenByHandoff) {
  ParkingGuard park(true);
  ParkSpinsGuard spins(4);
  const std::uint64_t parks0 = stats().parks;
  std::atomic<std::uint32_t> word{kWordWaiting};
  ParkBay bay;
  std::thread t([&] { EXPECT_EQ(wait_word(word, &bay), kWordGranted); });
  ASSERT_TRUE(rv::wait_for([&] { return bay.parked_count() >= 1; },
                           rv::milliseconds{2000}));
  wake_word(word);
  t.join();
  EXPECT_GE(stats().parks, parks0 + 1);
  EXPECT_EQ(bay.parked_count(), 0u);
}

TEST(ParkWord, ParkingDisabledStaysOnSpinPath) {
  ParkingGuard park(false);
  const std::uint64_t parks0 = stats().parks;
  std::atomic<std::uint32_t> word{kWordWaiting};
  ParkBay bay;
  std::thread t([&] { EXPECT_EQ(wait_word(word, &bay), kWordGranted); });
  rv::wait_for([] { return false; }, rv::milliseconds{20});
  EXPECT_EQ(bay.parked_count(), 0u);
  wake_word(word);
  t.join();
  EXPECT_EQ(stats().parks, parks0);
}

// ---------------------------------------------------------------------
// Queue-lock wiring: the contended slow path parks, the hand-off
// wakes, mutual exclusion and counters intact.
// ---------------------------------------------------------------------

TEST(ParkLocks, McsParkedHandoff) {
  ParkingGuard park(true);
  ParkSpinsGuard spins(4);
  McsLockResilient lock;
  McsLockResilient::QNode main_node;
  lock.acquire(main_node);
  std::atomic<bool> entered{false};
  std::thread t([&] {
    McsLockResilient::QNode n;
    lock.acquire(n);
    entered.store(true, std::memory_order_release);
    EXPECT_TRUE(lock.release(n));
  });
  ASSERT_TRUE(rv::wait_for([&] { return lock.parked_waiters() >= 1; },
                           rv::milliseconds{2000}));
  EXPECT_FALSE(entered.load(std::memory_order_acquire));
  EXPECT_TRUE(lock.release(main_node));
  t.join();
  EXPECT_TRUE(entered.load());
  EXPECT_EQ(lock.parked_waiters(), 0u);
}

TEST(ParkLocks, ClhParkedHandoff) {
  ParkingGuard park(true);
  ParkSpinsGuard spins(4);
  ClhLockResilient lock;
  ClhLockResilient::Context main_ctx;
  lock.acquire(main_ctx);
  std::atomic<bool> entered{false};
  std::thread t([&] {
    ClhLockResilient::Context c;
    lock.acquire(c);
    entered.store(true, std::memory_order_release);
    EXPECT_TRUE(lock.release(c));
  });
  ASSERT_TRUE(rv::wait_for([&] { return lock.parked_waiters() >= 1; },
                           rv::milliseconds{2000}));
  EXPECT_FALSE(entered.load(std::memory_order_acquire));
  EXPECT_TRUE(lock.release(main_ctx));
  t.join();
  EXPECT_TRUE(entered.load());
}

TEST(ParkLocks, TicketParkedHandoff) {
  ParkingGuard park(true);
  ParkSpinsGuard spins(4);
  TicketLockResilient lock;
  lock.acquire();
  std::atomic<bool> entered{false};
  std::thread t([&] {
    lock.acquire();
    entered.store(true, std::memory_order_release);
    EXPECT_TRUE(lock.release());
  });
  ASSERT_TRUE(rv::wait_for([&] { return lock.parked_waiters() >= 1; },
                           rv::milliseconds{2000}));
  EXPECT_FALSE(entered.load(std::memory_order_acquire));
  EXPECT_TRUE(lock.release());
  t.join();
  EXPECT_TRUE(entered.load());
}

TEST(ParkLocks, HmcsParkedHandoff) {
  ParkingGuard park(true);
  ParkSpinsGuard spins(4);
  HmcsLockResilient lock(two_domains());
  HmcsLockResilient::Context main_ctx;
  lock.acquire(main_ctx);
  std::atomic<bool> entered{false};
  std::thread t([&] {
    HmcsLockResilient::Context c;
    lock.acquire(c);
    entered.store(true, std::memory_order_release);
    EXPECT_TRUE(lock.release(c));
  });
  ASSERT_TRUE(rv::wait_for([&] { return lock.parked_waiters() >= 1; },
                           rv::milliseconds{2000}));
  EXPECT_FALSE(entered.load(std::memory_order_acquire));
  EXPECT_TRUE(lock.release(main_ctx));
  t.join();
  EXPECT_TRUE(entered.load());
}

TEST(ParkLocks, MutualExclusionUnderParkedContention) {
  ParkingGuard park(true);
  ParkSpinsGuard spins(8);
  McsLockResilient lock;
  std::uint64_t counter = 0;  // intentionally non-atomic
  constexpr std::uint32_t kThreads = 4;
  constexpr std::uint64_t kIters = 500;
  std::vector<std::thread> threads;
  for (std::uint32_t i = 0; i < kThreads; ++i) {
    threads.emplace_back([&] {
      McsLockResilient::QNode n;
      for (std::uint64_t k = 0; k < kIters; ++k) {
        lock.acquire(n);
        counter += 1;
        lock.release(n);
      }
    });
  }
  for (auto& t : threads) t.join();
  EXPECT_EQ(counter, kThreads * kIters);
}

// ---------------------------------------------------------------------
// Misuse-aware wakeup.
// ---------------------------------------------------------------------

TEST(ParkMisuse, ShieldedMisuseWakesParkedWaiter) {
  ParkingGuard park(true);
  ParkSpinsGuard spins(4);
  Shield<McsLockResilient> lock(shield::ShieldPolicy::kSuppress);
  Shield<McsLockResilient>::Context owner_ctx;
  generic_acquire(lock, owner_ctx);
  std::atomic<bool> entered{false};
  std::thread waiter([&] {
    Shield<McsLockResilient>::Context c;
    generic_acquire(lock, c);
    entered.store(true, std::memory_order_release);
    EXPECT_TRUE(generic_release(lock, c));
  });
  ASSERT_TRUE(rv::wait_for([&] { return lock.base().parked_waiters() >= 1; },
                           rv::milliseconds{2000}));
  // A third thread issues a bogus unlock. The shield absorbs it AND
  // broadcast-wakes the parked waiter, which re-checks and re-parks —
  // no wedge, no early entry.
  const std::uint64_t rescues0 = stats().misuse_wakes;
  std::thread bogus([&] {
    Shield<McsLockResilient>::Context c;
    EXPECT_FALSE(generic_release(lock, c));  // intercepted
  });
  bogus.join();
  EXPECT_GE(stats().misuse_wakes, rescues0 + 1);
  EXPECT_FALSE(entered.load(std::memory_order_acquire));
  EXPECT_TRUE(generic_release(lock, owner_ctx));
  waiter.join();
  EXPECT_TRUE(entered.load());
}

TEST(ParkMisuse, HmcsBareMisuseRefusedWakesParkedWaiter) {
  ParkingGuard park(true);
  ParkSpinsGuard spins(4);
  HmcsLockResilient lock(two_domains());
  HmcsLockResilient::Context owner_ctx;
  lock.acquire(owner_ctx);
  std::atomic<bool> entered{false};
  std::thread waiter([&] {
    HmcsLockResilient::Context c;
    lock.acquire(c);
    entered.store(true, std::memory_order_release);
    EXPECT_TRUE(lock.release(c));
  });
  ASSERT_TRUE(rv::wait_for([&] { return lock.parked_waiters() >= 1; },
                           rv::milliseconds{2000}));
  const std::uint64_t rescues0 = stats().misuse_wakes;
  HmcsLockResilient::Context fresh;
  EXPECT_FALSE(lock.release(fresh));  // misuse_refused path
  EXPECT_GE(stats().misuse_wakes, rescues0 + 1);
  EXPECT_TRUE(lock.release(owner_ctx));
  waiter.join();
  EXPECT_TRUE(entered.load());
}

TEST(ParkMisuse, TicketDirectRescueBroadcast) {
  ParkingGuard park(true);
  ParkSpinsGuard spins(4);
  TicketLockResilient lock;
  lock.acquire();
  std::thread waiter([&] {
    lock.acquire();
    EXPECT_TRUE(lock.release());
  });
  ASSERT_TRUE(rv::wait_for([&] { return lock.parked_waiters() >= 1; },
                           rv::milliseconds{2000}));
  const std::uint64_t rescues0 = stats().misuse_wakes;
  lock.misuse_wake();  // advisory broadcast: waiter re-checks, re-parks
  EXPECT_GE(stats().misuse_wakes, rescues0 + 1);
  EXPECT_TRUE(lock.release());
  waiter.join();
}

// HierMisuseFuzz-style randomized interleaving: threads acquire and
// release through the shield with parking on, and a misbehaving thread
// sprays bogus unlocks. Invariants: no lost updates, no wedge (the
// test completing is the assertion), rescue broadcasts absorbed.
TEST(ParkMisuse, RandomizedParkMisuseFuzz) {
  ParkingGuard park(true);
  ParkSpinsGuard spins(8);
  Shield<McsLockResilient> lock(shield::ShieldPolicy::kSuppress);
  std::uint64_t counter = 0;
  constexpr std::uint32_t kThreads = 4;
  constexpr std::uint64_t kIters = 300;
  std::vector<std::thread> threads;
  for (std::uint32_t i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      std::mt19937 rng(0xC0FFEE + i);
      Shield<McsLockResilient>::Context ctx;
      for (std::uint64_t k = 0; k < kIters; ++k) {
        if (rng() % 8 == 0) {
          // Bogus unlock while holding nothing: absorbed, and any
          // parked waiter gets a rescue broadcast.
          generic_release(lock, ctx);
          continue;
        }
        generic_acquire(lock, ctx);
        counter += 1;
        EXPECT_TRUE(generic_release(lock, ctx));
      }
    });
  }
  for (auto& t : threads) t.join();
  // Every non-misuse iteration incremented exactly once.
  EXPECT_GT(counter, 0u);
  EXPECT_LE(counter, kThreads * kIters);
}

// ---------------------------------------------------------------------
// park_until and TimedGate.
// ---------------------------------------------------------------------

TEST(ParkTimed, ParkUntilTimesOut) {
  ParkingGuard park(true);
  const std::uint64_t timeouts0 = stats().timeouts;
  std::atomic<std::uint32_t> word{0};
  const std::uint64_t deadline =
      platform::monotonic_now_ns() + 5 * 1000000ull;  // 5 ms
  // A word that never changes: every park_until call eventually
  // reports the deadline.
  while (park_until(word, 0, deadline)) {
  }
  EXPECT_GE(platform::monotonic_now_ns(), deadline);
  EXPECT_GE(stats().timeouts, timeouts0 + 1);
}

TEST(ParkTimed, ParkUntilSeesChange) {
  ParkingGuard park(true);
  std::atomic<std::uint32_t> word{0};
  std::thread t([&] {
    word.store(1, std::memory_order_release);
    futex_wake_all(&word);
  });
  const std::uint64_t deadline =
      platform::monotonic_now_ns() + 2000 * 1000000ull;
  while (word.load(std::memory_order_acquire) == 0) {
    ASSERT_TRUE(park_until(word, 0, deadline));
  }
  t.join();
}

TEST(ParkTimed, TimedGateTimesOutThenAcquires) {
  ParkingGuard park(true);
  TimedGate gate;
  std::atomic<bool> held{true};
  const auto try_lock = [&] {
    bool expected = false;
    return held.compare_exchange_strong(expected, true);
  };
  // Held elsewhere: the gate waits the full deadline and gives up.
  EXPECT_FALSE(gate.acquire_until(
      try_lock, platform::monotonic_now_ns() + 5 * 1000000ull));
  EXPECT_EQ(gate.waiters(), 0u);
  // Released: the next timed attempt succeeds on the fast path.
  held.store(false);
  gate.on_release();
  EXPECT_TRUE(gate.acquire_until(
      try_lock, platform::monotonic_now_ns() + 2000 * 1000000ull));
}

TEST(ParkTimed, TimedGateWokenByRelease) {
  ParkingGuard park(true);
  TimedGate gate;
  std::atomic<bool> held{true};
  const auto try_lock = [&] {
    bool expected = false;
    return held.compare_exchange_strong(expected, true);
  };
  std::thread releaser([&] {
    // Wait until the main thread is registered at the gate.
    rv::wait_for([&] { return gate.waiters() >= 1; },
                 rv::milliseconds{2000});
    held.store(false);
    gate.on_release();
  });
  EXPECT_TRUE(gate.acquire_until(
      try_lock, platform::monotonic_now_ns() + 5000 * 1000000ull));
  releaser.join();
}

// ---------------------------------------------------------------------
// Shim timedlock entry points.
// ---------------------------------------------------------------------

TEST(ShimTimedlock, TimesOutOnHeldMutexWithoutLockdepEdges) {
  ParkingGuard park(true);
  interpose::rl_mutex_t m{};
  ASSERT_EQ(interpose::rl_mutex_init(&m, "MCS", 1), 0);
  ASSERT_EQ(interpose::rl_mutex_lock(&m), 0);
  const std::uint64_t edges0 = lockdep::Graph::instance().stats().edges;
  std::thread t([&] {
    const timespec abs = realtime_in_ms(50);
    EXPECT_EQ(interpose::rl_mutex_timedlock(&m, &abs), ETIMEDOUT);
  });
  t.join();
  // Same contract as trylock: a timed-out acquisition never blocked
  // inside the protocol, so it contributes no order edges.
  EXPECT_EQ(lockdep::Graph::instance().stats().edges, edges0);
  EXPECT_EQ(interpose::rl_mutex_unlock(&m), 0);
  // Uncontended timed lock succeeds immediately.
  const timespec abs = realtime_in_ms(50);
  EXPECT_EQ(interpose::rl_mutex_timedlock(&m, &abs), 0);
  EXPECT_EQ(interpose::rl_mutex_unlock(&m), 0);
  EXPECT_EQ(interpose::rl_mutex_destroy(&m), 0);
}

TEST(ShimTimedlock, WokenByUnlockBeforeDeadline) {
  ParkingGuard park(true);
  interpose::rl_mutex_t m{};
  ASSERT_EQ(interpose::rl_mutex_init(&m, "Ticket", 1), 0);
  ASSERT_EQ(interpose::rl_mutex_lock(&m), 0);
  std::atomic<bool> acquired{false};
  std::thread t([&] {
    const timespec abs = realtime_in_ms(5000);
    EXPECT_EQ(interpose::rl_mutex_timedlock(&m, &abs), 0);
    acquired.store(true, std::memory_order_release);
    EXPECT_EQ(interpose::rl_mutex_unlock(&m), 0);
  });
  rv::wait_for([] { return false; }, rv::milliseconds{20});
  EXPECT_FALSE(acquired.load(std::memory_order_acquire));
  EXPECT_EQ(interpose::rl_mutex_unlock(&m), 0);
  t.join();
  EXPECT_TRUE(acquired.load());
  EXPECT_EQ(interpose::rl_mutex_destroy(&m), 0);
}

TEST(ShimTimedlock, InvalidAbstimeRejected) {
  interpose::rl_mutex_t m{};
  ASSERT_EQ(interpose::rl_mutex_init(&m, "MCS", 1), 0);
  EXPECT_EQ(interpose::rl_mutex_timedlock(&m, nullptr), EINVAL);
  const timespec bad{0, 1000000000L};  // tv_nsec out of range
  EXPECT_EQ(interpose::rl_mutex_timedlock(&m, &bad), EINVAL);
  EXPECT_EQ(interpose::rl_mutex_timedlock(nullptr, &bad), EINVAL);
  EXPECT_EQ(interpose::rl_mutex_destroy(&m), 0);
}

TEST(ShimTimedlock, RwTimedVariants) {
  ParkingGuard park(true);
  interpose::rl_rwlock_t rw{};
  ASSERT_EQ(interpose::rl_rwlock_init(&rw, "np", 1), 0);
  ASSERT_EQ(interpose::rl_rwlock_wrlock(&rw), 0);
  std::thread t([&] {
    timespec abs = realtime_in_ms(50);
    EXPECT_EQ(interpose::rl_rwlock_timedrdlock(&rw, &abs), ETIMEDOUT);
    abs = realtime_in_ms(50);
    EXPECT_EQ(interpose::rl_rwlock_timedwrlock(&rw, &abs), ETIMEDOUT);
  });
  t.join();
  ASSERT_EQ(interpose::rl_rwlock_unlock(&rw), 0);
  // Free lock: both timed entry points succeed immediately.
  timespec abs = realtime_in_ms(50);
  EXPECT_EQ(interpose::rl_rwlock_timedrdlock(&rw, &abs), 0);
  ASSERT_EQ(interpose::rl_rwlock_unlock(&rw), 0);
  abs = realtime_in_ms(50);
  EXPECT_EQ(interpose::rl_rwlock_timedwrlock(&rw, &abs), 0);
  ASSERT_EQ(interpose::rl_rwlock_unlock(&rw), 0);
  EXPECT_EQ(interpose::rl_rwlock_destroy(&rw), 0);
}

// ---------------------------------------------------------------------
// Lockstat attribution and response grammar.
// ---------------------------------------------------------------------

TEST(ParkObserve, LockstatCountsParksPerClass) {
  ParkingGuard park(true);
  ParkSpinsGuard spins(4);
  observe::LockstatGuard lockstat(true);
  observe::LockStat::instance().reset();
  Shield<McsLockResilient> lock(shield::ShieldPolicy::kSuppress);
  Shield<McsLockResilient>::Context owner_ctx;
  generic_acquire(lock, owner_ctx);
  std::thread waiter([&] {
    Shield<McsLockResilient>::Context c;
    generic_acquire(lock, c);
    EXPECT_TRUE(generic_release(lock, c));
  });
  ASSERT_TRUE(rv::wait_for([&] { return lock.base().parked_waiters() >= 1; },
                           rv::milliseconds{2000}));
  EXPECT_TRUE(generic_release(lock, owner_ctx));
  waiter.join();
  bool found = false;
  for (const auto& r : observe::LockStat::instance().report()) {
    if (r.parks > 0) {
      found = true;
      EXPECT_GE(r.wakes, 1u);
      EXPECT_GT(r.park_time, 0u);
    }
  }
  EXPECT_TRUE(found);
  observe::LockStat::instance().reset();
}

TEST(ParkObserve, ParkedThresholdConditionParses) {
  const auto rules = response::parse_rules("misuse@parked>=2=abort");
  ASSERT_TRUE(rules.has_value());
  ASSERT_EQ(rules->size(), 1u);
  EXPECT_EQ((*rules)[0].cond, response::Condition::kParkedAtLeast);
  EXPECT_EQ((*rules)[0].threshold, 2u);
  EXPECT_FALSE(response::parse_rules("misuse@parked>=0=log").has_value());
  EXPECT_FALSE(response::parse_rules("misuse@parked>=x=log").has_value());

  response::EventContext ctx;
  const std::string no_class;
  ctx.waiters_parked = 3;
  EXPECT_TRUE(response::cond_matches(response::Condition::kParkedAtLeast,
                                     2, no_class, response::kNoClass, ctx));
  ctx.waiters_parked = 1;
  EXPECT_FALSE(response::cond_matches(response::Condition::kParkedAtLeast,
                                      2, no_class, response::kNoClass,
                                      ctx));
}

TEST(ParkObserve, CurrentlyParkedGaugeTracksLiveWaiter) {
  ParkingGuard park(true);
  ParkSpinsGuard spins(4);
  std::atomic<std::uint32_t> word{kWordWaiting};
  ParkBay bay;
  const std::uint64_t before = stats().currently_parked;
  std::thread t([&] { wait_word(word, &bay); });
  ASSERT_TRUE(rv::wait_for(
      [&] { return stats().currently_parked >= before + 1; },
      rv::milliseconds{2000}));
  wake_word(word);
  t.join();
  EXPECT_EQ(stats().currently_parked, before);
}

// ---------------------------------------------------------------------
// C-RW read-side parking: the barrier waits (RP: writer_active_, WP:
// writers_pending_) park on the shared epoch word instead of spinning,
// and every barrier drop broadcast-wakes. These pin the carry-over from
// the futex-tier PR: rw rescue telemetry used to report
// waiters_parked == 0 because the read side never parked.
// ---------------------------------------------------------------------

TEST(ParkLocks, CrwReaderParksOnActiveWriterBarrier) {
  ParkingGuard park(true);
  ParkSpinsGuard spins(4);
  CrwRpLockResilient lock;
  CrwRpLockResilient::Context wctx, rctx;
  lock.wlock(wctx);
  std::atomic<bool> read_entered{false};
  std::thread reader([&] {
    lock.rlock(rctx);
    read_entered.store(true, std::memory_order_release);
    EXPECT_TRUE(lock.runlock(rctx));
  });
  // The reader must actually park (not yield-spin) on the RP barrier.
  ASSERT_TRUE(rv::wait_for([&] { return lock.parked_waiters() >= 1; },
                           rv::milliseconds{2000}));
  EXPECT_FALSE(read_entered.load(std::memory_order_acquire));
  EXPECT_TRUE(lock.wunlock(wctx));  // barrier drop broadcast-wakes
  reader.join();
  EXPECT_TRUE(read_entered.load());
  EXPECT_EQ(lock.parked_waiters(), 0u);
}

TEST(ParkLocks, CrwWpReaderParksOnPendingWriter) {
  ParkingGuard park(true);
  ParkSpinsGuard spins(4);
  CrwWpLockResilient lock;
  CrwWpLockResilient::Context wctx, rctx;
  lock.wlock(wctx);  // writers_pending_ stays raised until wunlock
  std::atomic<bool> read_entered{false};
  std::thread reader([&] {
    lock.rlock(rctx);
    read_entered.store(true, std::memory_order_release);
    EXPECT_TRUE(lock.runlock(rctx));
  });
  ASSERT_TRUE(rv::wait_for([&] { return lock.parked_waiters() >= 1; },
                           rv::milliseconds{2000}));
  EXPECT_FALSE(read_entered.load(std::memory_order_acquire));
  EXPECT_TRUE(lock.wunlock(wctx));
  reader.join();
  EXPECT_TRUE(read_entered.load());
  EXPECT_EQ(lock.parked_waiters(), 0u);
}

// REVIEW fix pin: a WP try_wlock that fails at the cohort still backs
// its writers_pending_ raise out through the wake barrier. The witness
// is the parked reader's re-check: the back-out's epoch bump lands as
// a spurious wake (the count is still held up by the real writer), so
// wakes_spurious must advance. Without the barrier the bump never
// happens — and when the failing trylock's decrement is the 1->0
// transition (reachable racing wunlock's cohort-release window), a
// parked reader sleeps through it forever.
TEST(ParkLocks, CrwWpFailedTryWlockBackoutWakesParkedReaders) {
  ParkingGuard park(true);
  ParkSpinsGuard spins(4);
  CrwWpLockResilient lock;
  CrwWpLockResilient::Context wctx, w2ctx, rctx;
  lock.wlock(wctx);  // holds the cohort, pending = 1
  std::atomic<bool> read_entered{false};
  std::thread reader([&] {
    lock.rlock(rctx);
    read_entered.store(true, std::memory_order_release);
    EXPECT_TRUE(lock.runlock(rctx));
  });
  ASSERT_TRUE(rv::wait_for([&] { return lock.parked_waiters() >= 1; },
                           rv::milliseconds{2000}));
  const std::uint64_t spurious_before = stats().wakes_spurious;
  // Cohort held by the live writer → try_acquire fails → pending
  // back-out 2->1 must broadcast like every other decrement site.
  EXPECT_FALSE(lock.try_wlock(w2ctx));
  ASSERT_TRUE(rv::wait_for(
      [&] { return stats().wakes_spurious >= spurious_before + 1; },
      rv::milliseconds{2000}))
      << "failed try_wlock back-out did not wake parked readers";
  EXPECT_FALSE(read_entered.load(std::memory_order_acquire));
  EXPECT_TRUE(lock.wunlock(wctx));
  reader.join();
  EXPECT_TRUE(read_entered.load());
  EXPECT_EQ(lock.parked_waiters(), 0u);
}

namespace {
std::atomic<int> g_rw_rescue_aborts{0};
void rw_rescue_abort_trap(response::ResponseEvent, const void*) {
  g_rw_rescue_aborts.fetch_add(1, std::memory_order_relaxed);
}
}  // namespace

TEST(ParkLocks, RwRescueSeesParkedReadersAndBroadcastWakes) {
  ParkingGuard park(true);
  ParkSpinsGuard spins(4);
  // The rule pair is the assertion: a misuse while a reader is parked
  // must match parked>=1 (suppress); if the read side were not wired
  // into parking the context would carry waiters_parked == 0, fall
  // through to misuse=abort, and trip the trap.
  ResponseRulesGuard rules("misuse@parked>=1=suppress;misuse=abort");
  response::ScopedAbortHandler trap(rw_rescue_abort_trap);
  g_rw_rescue_aborts.store(0, std::memory_order_relaxed);

  shield::RwShield<CrwRpLockResilient> rw;
  CrwRpLockResilient::Context wctx, rctx, mctx;
  rw.wlock(wctx);
  std::atomic<bool> read_entered{false};
  std::thread reader([&] {
    rw.rlock(rctx);
    read_entered.store(true, std::memory_order_release);
    EXPECT_TRUE(rw.unlock(rctx));
  });
  ASSERT_TRUE(rv::wait_for(
      [&] { return rw.base().parked_waiters() >= 1; },
      rv::milliseconds{2000}));

  const std::uint64_t wakes_before = stats().misuse_wakes;
  // Non-holder unlock (the §4 bug) from a third thread: absorbed, and
  // the rescue broadcast re-checks the parked reader.
  std::thread misuser([&] { EXPECT_FALSE(rw.unlock(mctx)); });
  misuser.join();
  EXPECT_EQ(g_rw_rescue_aborts.load(std::memory_order_relaxed), 0)
      << "rescue context reported waiters_parked == 0";
  EXPECT_GE(stats().misuse_wakes, wakes_before + 1);

  // The parked reader is still correct: it stays out until the writer
  // really leaves, then proceeds.
  EXPECT_FALSE(read_entered.load(std::memory_order_acquire));
  EXPECT_TRUE(rw.unlock(wctx));
  reader.join();
  EXPECT_TRUE(read_entered.load());
  EXPECT_EQ(rw.base().parked_waiters(), 0u);
}
