// Unit tests for the Figure 1 mining pipeline: classifier rules and
// end-to-end recovery of the paper's per-project counts from the
// synthetic corpus.
#include <gtest/gtest.h>

#include "mining/classifier.hpp"
#include "mining/corpus.hpp"

namespace rm = resilock::mining;

TEST(Classifier, UnbalancedUnlockPhrases) {
  using C = rm::MisuseClass;
  EXPECT_EQ(rm::classify("net: fix double unlock in error path"),
            C::kUnbalancedUnlock);
  EXPECT_EQ(rm::classify("don't unlock mutex without holding it"),
            C::kUnbalancedUnlock);
  EXPECT_EQ(rm::classify("remove stray unlock left after refactor"),
            C::kUnbalancedUnlock);
  EXPECT_EQ(rm::classify("fix READ UNLOCK on write-locked rwlock"),
            C::kUnbalancedUnlock);  // case-insensitive
}

TEST(Classifier, UnbalancedLockPhrases) {
  using C = rm::MisuseClass;
  EXPECT_EQ(rm::classify("fs: fix missing unlock on error return"),
            C::kUnbalancedLock);
  EXPECT_EQ(rm::classify("don't forget to unlock before returning early"),
            C::kUnbalancedLock);
  EXPECT_EQ(rm::classify("mm: fix recursive lock self-deadlock"),
            C::kUnbalancedLock);
  EXPECT_EQ(rm::classify("correct lock placement around cache update"),
            C::kUnbalancedLock);
}

TEST(Classifier, DesignAndPerformanceChangesExcluded) {
  // §2.1: "we excluded the ones that indicated code changes pertaining
  // to lock design and performance".
  using C = rm::MisuseClass;
  EXPECT_EQ(rm::classify("reduce mutex hold time in hot path"),
            C::kUnrelated);
  EXPECT_EQ(rm::classify("lockless fast path for stat counters"),
            C::kUnrelated);
  EXPECT_EQ(rm::classify("shard the global mutex to reduce contention"),
            C::kUnrelated);
}

TEST(Classifier, NonLockCommitsUnrelated) {
  EXPECT_EQ(rm::classify("bump version to 1.2.3"),
            rm::MisuseClass::kUnrelated);
  EXPECT_EQ(rm::classify("fix typo in README"),
            rm::MisuseClass::kUnrelated);
}

TEST(Classifier, SearchStringListMatchesPaper) {
  const auto& strings = rm::search_strings();
  EXPECT_EQ(strings.size(), 19u);  // the §2.1 list
  EXPECT_EQ(strings.front(), "unlock");
  EXPECT_EQ(strings.back(), "forgetting to release a lock");
}

TEST(Corpus, GroundTruthMatchesFigure1) {
  const auto& gt = rm::figure1_ground_truth();
  ASSERT_EQ(gt.size(), 5u);
  EXPECT_STREQ(gt[0].project, "Golang");
  EXPECT_EQ(gt[0].unbalanced_unlock, 14u);
  EXPECT_EQ(gt[0].unbalanced_lock, 20u);
  EXPECT_STREQ(gt[1].project, "Linux kernel");
  EXPECT_EQ(gt[1].unbalanced_unlock, 40u);
  EXPECT_EQ(gt[1].unbalanced_lock, 12u);
  EXPECT_STREQ(gt[4].project, "memcached");
  EXPECT_EQ(gt[4].unbalanced_unlock, 3u);
  EXPECT_EQ(gt[4].unbalanced_lock, 9u);
}

TEST(Corpus, DeterministicForSameSeed) {
  const auto a = rm::generate_corpus(10, 1);
  const auto b = rm::generate_corpus(10, 1);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].message, b[i].message);
    EXPECT_EQ(a[i].project, b[i].project);
  }
  const auto c = rm::generate_corpus(10, 2);
  bool differs = false;
  for (std::size_t i = 0; i < std::min(a.size(), c.size()); ++i) {
    if (a[i].message != c[i].message) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(EndToEnd, ClassifierRecoversPlantedCountsExactly) {
  // The Figure 1 reproduction: mine the corpus, classify, and compare
  // against the paper's counts.
  const auto corpus = rm::generate_corpus(/*noise_per_project=*/60);
  const auto tallies = rm::tally(corpus);
  ASSERT_EQ(tallies.size(), 5u);
  for (const auto& gt : rm::figure1_ground_truth()) {
    const auto it = tallies.find(gt.project);
    ASSERT_NE(it, tallies.end()) << gt.project;
    EXPECT_EQ(it->second.unbalanced_unlock, gt.unbalanced_unlock)
        << gt.project;
    EXPECT_EQ(it->second.unbalanced_lock, gt.unbalanced_lock) << gt.project;
    EXPECT_EQ(it->second.unrelated, 60u) << gt.project;  // noise excluded
  }
}

TEST(EndToEnd, UnlockFractionsMatchFigure1Shape) {
  // Figure 1's headline: unbalanced-unlock is a significant fraction —
  // dominant in Linux, minority elsewhere.
  const auto tallies = rm::tally(rm::generate_corpus());
  EXPECT_GT(tallies.at("Linux kernel").unlock_fraction(), 0.5);
  EXPECT_LT(tallies.at("MySQL").unlock_fraction(), 0.5);
  EXPECT_LT(tallies.at("memcached").unlock_fraction(), 0.5);
  EXPECT_NEAR(tallies.at("Golang").unlock_fraction(), 14.0 / 34.0, 1e-9);
}

TEST(Tally, EmptyCorpus) {
  EXPECT_TRUE(rm::tally({}).empty());
}
