// The observability plane (src/telemetry/): background collector,
// sinks, metrics registry, span tracing, and the abort-flush path.
//
//   * overload — a producer burst outruns any consumer; drops are
//     counted EXACTLY (emitted == delivered + dropped), the emit path
//     never blocks, and the drop counters surface in the metrics
//     snapshot;
//   * drain guard — TraceBuffer::drain's single-consumer contract is
//     enforced: a drainer arriving while one is in progress gets 0;
//   * spans — hold/wait markers are emitted only behind the opt-in
//     flag, paired per (thread, lock), carrying the rw mode payload;
//   * perfetto sink — the produced chrome-trace document is
//     well-formed, with instants for misuse and "X" slices for spans;
//   * abort flush — an aborting lockdep verdict lands its own trace
//     event in RESILOCK_TRACE_FILE even though std::abort() skips
//     atexit handlers (death test).
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>

#include "core/rw/crw.hpp"
#include "core/tas.hpp"
#include "lockdep/event_ring.hpp"
#include "lockdep/lockdep.hpp"
#include "response/response.hpp"
#include "shield/rw_shield.hpp"
#include "shield/shield.hpp"
#include "telemetry/collector.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/sink.hpp"

using namespace resilock;
using lockdep::EventKind;
using lockdep::TraceBuffer;
using lockdep::TraceEvent;
using telemetry::Collector;
using telemetry::MetricsRegistry;

namespace {

void clear_trace() { TraceBuffer::instance().drain_all(); }

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// Sink that counts instead of writing; `marked` counts only events on
// the test's own lock pointer so leftovers from other tests' threads
// cannot skew the accounting.
class CountingSink final : public telemetry::Sink {
 public:
  CountingSink(std::atomic<std::uint64_t>* total,
               std::atomic<std::uint64_t>* marked, const void* marker)
      : total_(total), marked_(marked), marker_(marker) {}
  const char* name() const noexcept override { return "counting"; }
  void consume(const TraceEvent& e) override {
    total_->fetch_add(1, std::memory_order_relaxed);
    if (e.lock == marker_) marked_->fetch_add(1, std::memory_order_relaxed);
  }
  void flush() override {}
  void close() override {}
  std::uint64_t written() const noexcept override {
    return total_->load(std::memory_order_relaxed);
  }

 private:
  std::atomic<std::uint64_t>* total_;
  std::atomic<std::uint64_t>* marked_;
  const void* marker_;
};

}  // namespace

// ---------------------------------------------------------------------
// Abort flush. Declared first (and run with the threadsafe style, which
// re-executes the binary) so the forked child never inherits a
// half-alive collector thread from an earlier test.
// ---------------------------------------------------------------------

namespace {
[[noreturn]] void die_with_inversion(const char* path) {
  setenv("RESILOCK_TRACE_FILE", path, 1);
  shield::ShieldPolicyGuard dflt(shield::ShieldPolicy::kSuppress);
  lockdep::LockdepModeGuard mode(lockdep::LockdepMode::kReport);
  response::ResponseRulesGuard rules("lockdep=abort");
  Shield<TasLock> a, b;
  a.acquire();
  b.acquire();  // edge A->B
  b.release();
  a.release();
  b.acquire();
  a.acquire();  // closing edge B->A: inversion -> abort verdict
  std::abort();  // unreachable: the verdict died first
}
}  // namespace

TEST(TelemetryAbortDeathTest, AbortVerdictLandsItsTraceOnDisk) {
  ::testing::FLAGS_gtest_death_test_style = "threadsafe";
  const std::string path =
      ::testing::TempDir() + "resilock_abort_trace.jsonl";
  std::remove(path.c_str());
  EXPECT_EXIT(die_with_inversion(path.c_str()),
              ::testing::KilledBySignal(SIGABRT), "");
  // std::abort() skipped atexit, but the response engine's flush hook
  // drained the rings first: the aborting inversion is on disk.
  const std::string trace = slurp(path);
  EXPECT_NE(trace.find("\"kind\":\"order-inversion\""), std::string::npos)
      << trace;
  EXPECT_NE(trace.find("\"verdict\":\"abort\""), std::string::npos);
  std::remove(path.c_str());
  unsetenv("RESILOCK_TRACE_FILE");
}

// ---------------------------------------------------------------------
// EventRing: runtime capacity.
// ---------------------------------------------------------------------

TEST(EventRingCapacity, RoundsToPowerOfTwoAndClamps) {
  using lockdep::EventRing;
  EXPECT_EQ(EventRing::round_capacity(0), 64u);
  EXPECT_EQ(EventRing::round_capacity(64), 64u);
  EXPECT_EQ(EventRing::round_capacity(65), 128u);
  EXPECT_EQ(EventRing::round_capacity(300), 512u);
  EXPECT_EQ(EventRing::round_capacity(std::size_t{1} << 30),
            std::size_t{1} << 20);
  EXPECT_EQ(EventRing(300).capacity(), 512u);
}

TEST(EventRingCapacity, WrapsExactlyAtRuntimeCapacity) {
  lockdep::EventRing r(256);
  ASSERT_EQ(r.capacity(), 256u);
  TraceEvent e;
  std::uint64_t next_out = 0;
  for (std::uint64_t i = 0; i < 10 * 256; ++i) {
    e.ns = i;
    ASSERT_TRUE(r.push(e));
    if (i % 2 == 1) {
      TraceEvent out;
      ASSERT_TRUE(r.pop(out));
      EXPECT_EQ(out.ns, next_out++);
      ASSERT_TRUE(r.pop(out));
      EXPECT_EQ(out.ns, next_out++);
    }
  }
  EXPECT_EQ(r.dropped(), 0u);
  EXPECT_EQ(r.emitted(), 10u * 256);
  // Overfill: exactly capacity retained, the rest counted.
  while (r.push(e)) {
  }
  EXPECT_EQ(r.dropped(), 1u);
}

// ---------------------------------------------------------------------
// Drain guard: single consumer, enforced.
// ---------------------------------------------------------------------

TEST(DrainGuard, SecondConsumerGetsZero) {
  clear_trace();
  auto& tb = TraceBuffer::instance();
  int marker = 0;
  tb.emit(EventKind::kDoubleUnlock, &marker);
  tb.emit(EventKind::kDoubleUnlock, &marker);
  // A drain started from inside a drain IS a second concurrent
  // consumer — deterministically mid-drain.
  std::size_t inner = 12345;
  const std::size_t outer = tb.drain([&](const TraceEvent&) {
    inner = tb.drain([](const TraceEvent&) {});
  });
  EXPECT_EQ(outer, 2u);
  EXPECT_EQ(inner, 0u);
  // The guard releases: a later drain works again.
  tb.emit(EventKind::kDoubleUnlock, &marker);
  EXPECT_EQ(tb.drain([](const TraceEvent&) {}), 1u);
}

// ---------------------------------------------------------------------
// Collector: overload, exact accounting, metrics surfacing.
// ---------------------------------------------------------------------

TEST(Collector, OverloadCountsEveryDropExactly) {
  clear_trace();
  auto& tb = TraceBuffer::instance();
  Collector& c = Collector::instance();
  ASSERT_FALSE(c.running());

  int marker = 0;
  const std::uint64_t emitted_before = tb.emitted();
  const std::uint64_t dropped_before = tb.dropped();
  // Burst with NO consumer running: the emit path must never block —
  // the ring keeps the oldest `capacity` events and counts the rest.
  constexpr std::uint64_t kBurst = 10000;
  for (std::uint64_t i = 0; i < kBurst; ++i) {
    tb.emit(EventKind::kNonOwnerUnlock, &marker);
  }
  const std::uint64_t emitted = tb.emitted() - emitted_before;
  const std::uint64_t dropped = tb.dropped() - dropped_before;
  EXPECT_EQ(emitted, kBurst);
  ASSERT_GT(dropped, 0u);

  // Now bring up the collector; it must deliver exactly the survivors.
  std::atomic<std::uint64_t> total{0}, marked{0};
  c.add_sink(std::make_unique<CountingSink>(&total, &marked, &marker));
  ASSERT_TRUE(c.start());
  ASSERT_TRUE(c.running());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (marked.load() < kBurst - dropped &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::yield();
  }
  c.stop();
  ASSERT_FALSE(c.running());

  // Exact accounting: every burst event was delivered or counted.
  EXPECT_EQ(marked.load() + dropped, kBurst);
  const telemetry::CollectorStats cs = c.stats();
  EXPECT_GE(cs.events_delivered, marked.load());
  EXPECT_GT(cs.drain_cycles, 0u);

  // The drop counter is a first-class metric.
  const telemetry::MetricsSnapshot m = MetricsRegistry::instance().snapshot();
  EXPECT_GE(m.value("trace.events_dropped"), dropped);
  EXPECT_GE(m.value("trace.events_emitted"), emitted);
  EXPECT_EQ(m.value("collector.running"), 0u);
}

TEST(Collector, ProducerOutrunsRunningCollectorWithoutBlocking) {
  clear_trace();
  Collector& c = Collector::instance();
  auto& tb = TraceBuffer::instance();
  int marker = 0;
  std::atomic<std::uint64_t> total{0}, marked{0};
  c.add_sink(std::make_unique<CountingSink>(&total, &marked, &marker));
  ASSERT_TRUE(c.start());

  const std::uint64_t emitted_before = tb.emitted();
  const std::uint64_t dropped_before = tb.dropped();
  constexpr std::uint64_t kEvents = 300000;
  std::thread producer([&] {
    for (std::uint64_t i = 0; i < kEvents; ++i) {
      tb.emit(EventKind::kReentrantRelock, &marker);
    }
  });
  producer.join();
  c.stop();  // final drain: nothing stays queued

  const std::uint64_t emitted = tb.emitted() - emitted_before;
  const std::uint64_t dropped = tb.dropped() - dropped_before;
  EXPECT_EQ(emitted, kEvents);
  // Exact accounting under live contention between producer and the
  // background thread: delivered + dropped == emitted, nothing lost,
  // nothing duplicated.
  EXPECT_EQ(marked.load() + dropped, kEvents);
}

TEST(Collector, RestartsWithFreshSinksAndAutostartRespectsEnv) {
  clear_trace();
  Collector& c = Collector::instance();
  ASSERT_FALSE(c.running());
  // Autostart is a no-op without the env opt-in.
  unsetenv("RESILOCK_TELEMETRY");
  telemetry::autostart_from_env();
  EXPECT_FALSE(c.running());
  // With it, the collector comes up (no trace file -> no sinks, which
  // leaves the rings to the exporters) and stop() is clean.
  setenv("RESILOCK_TELEMETRY", "1", 1);
  unsetenv("RESILOCK_TRACE_FILE");
  telemetry::autostart_from_env();
  EXPECT_TRUE(c.running());
  c.stop();
  EXPECT_FALSE(c.running());
  unsetenv("RESILOCK_TELEMETRY");
}

// ---------------------------------------------------------------------
// Span tracing.
// ---------------------------------------------------------------------

TEST(Spans, OffByDefaultOnWithGuardPairedPerLock) {
  clear_trace();
  Shield<TasLock> lock;
  lock.acquire();
  lock.release();
  for (const auto& e : TraceBuffer::instance().drain_all()) {
    EXPECT_FALSE(lockdep::is_span_kind(e.kind)) << to_string(e.kind);
  }

  lockdep::SpanTracingGuard spans(true);
  lock.acquire();
  lock.release();
  int begins = 0, ends = 0;
  for (const auto& e : TraceBuffer::instance().drain_all()) {
    if (e.lock != &lock) continue;
    if (e.kind == EventKind::kHoldBegin) ++begins;
    if (e.kind == EventKind::kHoldEnd) ++ends;
  }
  EXPECT_EQ(begins, 1);
  EXPECT_EQ(ends, 1);
}

TEST(Spans, ContendedAcquireEmitsWaitSpan) {
  clear_trace();
  lockdep::SpanTracingGuard spans(true);
  Shield<TasLock> lock;
  std::atomic<bool> held{false};
  std::thread holder([&] {
    lock.acquire();
    held.store(true, std::memory_order_release);
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    lock.release();
  });
  while (!held.load(std::memory_order_acquire)) std::this_thread::yield();
  lock.acquire();  // observed held: the contended window is bracketed
  lock.release();
  holder.join();
  int wait_begin = 0, wait_end = 0;
  for (const auto& e : TraceBuffer::instance().drain_all()) {
    if (e.lock != &lock) continue;
    if (e.kind == EventKind::kWaitBegin) ++wait_begin;
    if (e.kind == EventKind::kWaitEnd) ++wait_end;
  }
  EXPECT_GE(wait_begin, 1);
  EXPECT_EQ(wait_begin, wait_end);
}

TEST(Spans, RwHoldSpansCarryTheMode) {
  clear_trace();
  lockdep::SpanTracingGuard spans(true);
  using Rw = CrwLock<kOriginal, SplitReadIndicator, RwPreference::kNeutral>;
  RwShield<Rw> rw;
  Rw::Context rctx, wctx;
  rw.rlock(rctx);
  EXPECT_TRUE(rw.runlock(rctx));
  rw.wlock(wctx);
  EXPECT_TRUE(rw.wunlock(wctx));
  bool saw_read_hold = false, saw_write_hold = false;
  for (const auto& e : TraceBuffer::instance().drain_all()) {
    if (e.lock != &rw || e.kind != EventKind::kHoldBegin) continue;
    if (e.mode == static_cast<std::uint8_t>(AccessMode::kRead)) {
      saw_read_hold = true;
    }
    if (e.mode == static_cast<std::uint8_t>(AccessMode::kWrite)) {
      saw_write_hold = true;
    }
  }
  EXPECT_TRUE(saw_read_hold);
  EXPECT_TRUE(saw_write_hold);
}

// ---------------------------------------------------------------------
// Sinks.
// ---------------------------------------------------------------------

TEST(PerfettoSink, ProducesOneValidDocumentWithInstantsAndSlices) {
  const std::string path =
      ::testing::TempDir() + "resilock_perfetto_test.json";
  std::remove(path.c_str());
  auto sink = telemetry::make_perfetto_sink(path.c_str());
  ASSERT_NE(sink, nullptr);

  int marker = 0;
  TraceEvent e;
  e.pid = 7;
  e.lock = &marker;
  e.ns = 1000;
  e.kind = EventKind::kDoubleUnlock;
  e.verdict = static_cast<std::uint8_t>(response::Action::kSuppress);
  sink->consume(e);  // instant
  e.kind = EventKind::kHoldBegin;
  e.ns = 2000;
  e.verdict = lockdep::kNoVerdict;
  sink->consume(e);
  e.kind = EventKind::kHoldEnd;
  e.ns = 5000;
  sink->consume(e);  // closes a 3us slice
  e.kind = EventKind::kWaitEnd;
  e.ns = 6000;
  sink->consume(e);  // end without begin: dropped, not corrupted
  EXPECT_EQ(sink->written(), 2u);  // instant + hold slice
  sink->close();

  const std::string doc = slurp(path);
  EXPECT_EQ(doc.rfind("{\"traceEvents\":[", 0), 0u) << doc;
  EXPECT_NE(doc.find("]}"), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"i\""), std::string::npos);
  EXPECT_NE(doc.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(doc.find("\"name\":\"lock-hold\""), std::string::npos);
  EXPECT_NE(doc.find("\"dur\":3.000"), std::string::npos) << doc;
  EXPECT_NE(doc.find("\"thread_name\""), std::string::npos);
  EXPECT_NE(doc.find("double-unlock"), std::string::npos);
  std::remove(path.c_str());
}

TEST(Sinks, EnvSelectsFormatAndJsonlAppends) {
  const std::string path = ::testing::TempDir() + "resilock_sink_env.log";
  std::remove(path.c_str());
  setenv("RESILOCK_TRACE_FILE", path.c_str(), 1);
  setenv("RESILOCK_TRACE_FORMAT", "perfetto", 1);
  {
    auto sink = telemetry::make_sink_from_env();
    ASSERT_NE(sink, nullptr);
    EXPECT_STREQ(sink->name(), "perfetto");
    sink->close();
  }
  setenv("RESILOCK_TRACE_FORMAT", "jsonl", 1);
  {
    auto sink = telemetry::make_sink_from_env();
    ASSERT_NE(sink, nullptr);
    EXPECT_STREQ(sink->name(), "jsonl");
    TraceEvent e;
    e.kind = EventKind::kDoubleUnlock;
    sink->consume(e);
    sink->close();
  }
  // jsonl opens in append mode: the perfetto document head written
  // above is still there, with one JSONL line after it.
  const std::string text = slurp(path);
  EXPECT_NE(text.find("\"kind\":\"double-unlock\""), std::string::npos);
  unsetenv("RESILOCK_TRACE_FILE");
  unsetenv("RESILOCK_TRACE_FORMAT");
  std::remove(path.c_str());
}

// ---------------------------------------------------------------------
// Metrics registry.
// ---------------------------------------------------------------------

TEST(Metrics, SnapshotCoversEveryLayerAndCustomGauges) {
  auto& reg = MetricsRegistry::instance();
  std::atomic<std::uint64_t> custom{41};
  reg.register_gauge("test.custom", [&] { return custom.load(); });
  custom.store(42);
  ContentionProbe probe;
  probe.begin_wait();
  reg.register_contention_probe("test.probe", &probe);

  const telemetry::MetricsSnapshot s = reg.snapshot();
  EXPECT_GT(s.ns, 0u);
  EXPECT_EQ(s.value("test.custom"), 42u);
  EXPECT_EQ(s.value("test.probe.waiters"), 1u);
  EXPECT_EQ(s.value("test.probe.contended_total"), 1u);
  // One representative per built-in source; value(name, fallback=0)
  // with a sentinel fallback proves presence, not magnitude.
  EXPECT_NE(s.value("response.decisions", 999999), 999999u);
  EXPECT_NE(s.value("response.event.double-unlock", 999999), 999999u);
  EXPECT_NE(s.value("response.action.suppress", 999999), 999999u);
  EXPECT_NE(s.value("lockdep.edges", 999999), 999999u);
  EXPECT_NE(s.value("lockdep.rr_skipped", 999999), 999999u);
  EXPECT_NE(s.value("trace.events_dropped", 999999), 999999u);
  EXPECT_NE(s.value("collector.sleep_us", 999999), 999999u);

  probe.end_wait();
  reg.unregister_contention_probe("test.probe");
  reg.unregister_gauge("test.custom");
  EXPECT_EQ(reg.snapshot().value("test.custom", 7), 7u);
}

TEST(Metrics, DumpsTextAndJson) {
  auto& reg = MetricsRegistry::instance();
  const std::string path = ::testing::TempDir() + "resilock_metrics_test";
  ASSERT_TRUE(reg.dump(path.c_str(), telemetry::MetricsFormat::kText));
  std::string text = slurp(path);
  EXPECT_NE(text.find("trace.events_emitted="), std::string::npos) << text;
  EXPECT_NE(text.find("lockdep.classes_live="), std::string::npos);

  ASSERT_TRUE(reg.dump(path.c_str(), telemetry::MetricsFormat::kJson));
  text = slurp(path);
  // Truncate-on-dump: the text dump is gone, one JSON object remains.
  EXPECT_EQ(text.rfind("{\"ns\":", 0), 0u) << text;
  EXPECT_NE(text.find("\"metrics\":{"), std::string::npos);
  EXPECT_NE(text.find("\"response.decisions\":"), std::string::npos);
  EXPECT_EQ(text.find('='), std::string::npos);
  std::remove(path.c_str());
}

TEST(Metrics, CollectorDumpsPeriodicallyWhenConfigured) {
  clear_trace();
  const std::string path =
      ::testing::TempDir() + "resilock_metrics_periodic";
  std::remove(path.c_str());
  setenv("RESILOCK_METRICS_FILE", path.c_str(), 1);
  setenv("RESILOCK_METRICS_FORMAT", "json", 1);
  setenv("RESILOCK_METRICS_INTERVAL_MS", "10", 1);
  Collector& c = Collector::instance();
  ASSERT_TRUE(c.start());
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (c.stats().metrics_dumps < 2 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  c.stop();
  EXPECT_GE(c.stats().metrics_dumps, 2u);
  const std::string text = slurp(path);
  EXPECT_EQ(text.rfind("{\"ns\":", 0), 0u) << text;
  unsetenv("RESILOCK_METRICS_FILE");
  unsetenv("RESILOCK_METRICS_FORMAT");
  unsetenv("RESILOCK_METRICS_INTERVAL_MS");
  std::remove(path.c_str());
}
