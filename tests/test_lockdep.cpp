// Unit + scenario tests for the lock-dependency subsystem
// (src/lockdep/):
//   * the order graph — class registration/retirement/recycling, edge
//     dedup, table-full fail-open;
//   * the per-thread acquisition stack, including overflow fail-open;
//   * the misuse event ring (SPSC semantics, drop accounting, shield
//     violations arriving as timestamped events);
//   * detection semantics through real Shield<L> locks: AB/BA flagged
//     on first occurrence with no wedge, dining-philosophers cycle,
//     no false positives on consistent ordering across TAS/Ticket/MCS,
//     trylock neutrality, §5 escape-hatch stack hygiene;
//   * the mode engine (report/abort/off) and the verify-layer
//     scenario matrix.
#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "core/lock_registry.hpp"
#include "core/mcs.hpp"
#include "core/tas.hpp"
#include "core/ticket.hpp"
#include "interpose/transparent_mutex.hpp"
#include "lockdep/event_ring.hpp"
#include "lockdep/lockdep.hpp"
#include "shield/shield.hpp"
#include "verify/lockdep_matrix.hpp"

using namespace resilock;
using lockdep::AcqStack;
using lockdep::EventKind;
using lockdep::EventRing;
using lockdep::Graph;
using lockdep::LockdepMode;
using lockdep::LockdepModeGuard;
using lockdep::TraceBuffer;
using shield::ShieldPolicy;

namespace {

lockdep::LockdepStats stats() { return Graph::instance().stats(); }

// The trace buffer is process-global; tests that assert on drained
// events clear leftovers from earlier tests first.
void clear_trace() { TraceBuffer::instance().drain_all(); }

}  // namespace

// ---------------------------------------------------------------------
// Mode engine.
// ---------------------------------------------------------------------

TEST(LockdepMode, Names) {
  using lockdep::mode_from_name;
  EXPECT_EQ(mode_from_name("off"), LockdepMode::kOff);
  EXPECT_EQ(mode_from_name("report"), LockdepMode::kReport);
  EXPECT_EQ(mode_from_name("abort"), LockdepMode::kAbort);
  EXPECT_FALSE(mode_from_name("bogus").has_value());
  EXPECT_STREQ(lockdep::to_string(LockdepMode::kReport), "report");
}

TEST(LockdepMode, GuardRestoresOnScopeExit) {
  const LockdepMode before = lockdep::lockdep_mode();
  {
    LockdepModeGuard pin(LockdepMode::kAbort);
    EXPECT_EQ(lockdep::lockdep_mode(), LockdepMode::kAbort);
  }
  EXPECT_EQ(lockdep::lockdep_mode(), before);
}

// ---------------------------------------------------------------------
// Graph: classes and edges.
// ---------------------------------------------------------------------

TEST(LockdepGraph, RegisterRetireRecycle) {
  auto& g = Graph::instance();
  int x = 0, y = 0;
  const auto live_before = stats().classes_live;
  const lockdep::ClassId a = g.register_class(&x, "A");
  const lockdep::ClassId b = g.register_class(&y, "B");
  ASSERT_TRUE(lockdep::class_tracked(a));
  ASSERT_TRUE(lockdep::class_tracked(b));
  EXPECT_NE(a, b);
  EXPECT_STREQ(g.label_of(a), "A");
  EXPECT_EQ(stats().classes_live, live_before + 2);

  g.ensure_edge(a, b, &y);
  EXPECT_TRUE(g.has_edge(a, b));
  EXPECT_FALSE(g.has_edge(b, a));

  // Retirement clears both the row and the column, so a recycled id
  // starts with no inherited order constraints.
  g.retire_class(a);
  g.retire_class(b);
  EXPECT_EQ(stats().classes_live, live_before);
  const lockdep::ClassId b2 = g.register_class(&y, "B2");
  const lockdep::ClassId a2 = g.register_class(&x, "A2");
  EXPECT_FALSE(g.has_edge(a2, b2));
  EXPECT_FALSE(g.has_edge(b2, a2));
  g.retire_class(a2);
  g.retire_class(b2);
}

TEST(LockdepGraph, EdgeDedupAndSelfEdgeSkip) {
  auto& g = Graph::instance();
  int x = 0, y = 0;
  const auto a = g.register_class(&x, nullptr);
  const auto b = g.register_class(&y, nullptr);
  const auto edges_before = stats().edges;
  g.ensure_edge(a, b, &y);
  g.ensure_edge(a, b, &y);  // duplicate: no new edge
  g.ensure_edge(a, a, &x);  // self edge: skipped
  EXPECT_EQ(stats().edges, edges_before + 1);
  g.retire_class(a);
  g.retire_class(b);
}

TEST(LockdepGraph, TableFullFailsOpen) {
  auto& g = Graph::instance();
  int dummy = 0;
  const auto refused_before = stats().class_table_full;
  // Clamp growth at the currently-mapped capacity, then fill every
  // free slot: the next registration has nowhere to grow to, which is
  // the 4M-slot hard ceiling in miniature.
  lockdep::CapacityLimitGuard clamp(g.capacity());
  std::vector<lockdep::ClassId> ids;
  for (;;) {
    const auto id = g.register_class(&dummy, "filler");
    if (id == lockdep::kUntrackedClass) break;
    ids.push_back(id);
    ASSERT_LE(ids.size(), g.capacity());
  }
  EXPECT_GT(stats().class_table_full, refused_before);
  // Untracked ids are inert everywhere, including the hot-path probe.
  ASSERT_FALSE(ids.empty());
  g.ensure_edge(lockdep::kUntrackedClass, ids.front(), &dummy);
  EXPECT_FALSE(g.has_edge(lockdep::kUntrackedClass, ids.front()));
  EXPECT_FALSE(g.has_edge(ids.front(), lockdep::kInvalidClass));
  g.retire_class(lockdep::kUntrackedClass);
  g.retire_class(lockdep::kInvalidClass);
  for (const auto id : ids) g.retire_class(id);
  // The table works again after retirement: the freed slots sit in
  // epoch limbo until no reader is pinned, then recycle.
  const auto id = g.register_class(&dummy, "post");
  EXPECT_TRUE(lockdep::class_tracked(id));
  g.retire_class(id);
}

// ---------------------------------------------------------------------
// Acquisition stack.
// ---------------------------------------------------------------------

TEST(LockdepAcqStack, PushRemoveOutOfOrder) {
  // A fresh thread gets a fresh thread-local stack, so this cannot
  // disturb the main thread's (shared with every shield it touches).
  std::thread([] {
    auto& st = AcqStack::mine();
    int a = 0, b = 0, c = 0;
    EXPECT_EQ(st.depth(), 0u);
    EXPECT_TRUE(st.push(&a, 1));
    EXPECT_TRUE(st.push(&b, 2));
    EXPECT_TRUE(st.push(&c, 3));
    EXPECT_TRUE(st.contains(&b));
    st.remove(&b);  // out-of-LIFO release
    EXPECT_FALSE(st.contains(&b));
    EXPECT_EQ(st.depth(), 2u);
    // Order of the survivors is preserved.
    EXPECT_EQ(st.begin()[0].lock, &a);
    EXPECT_EQ(st.begin()[1].lock, &c);
    st.remove(&b);  // absent: no-op
    EXPECT_EQ(st.depth(), 2u);
    st.remove(&a);
    st.remove(&c);
    EXPECT_EQ(st.depth(), 0u);
  }).join();
}

TEST(LockdepAcqStack, OverflowFailsOpen) {
  std::thread([] {
    auto& st = AcqStack::mine();
    const auto overflow_before = stats().stack_overflow;
    std::vector<int> locks(AcqStack::kMaxDepth + 1);
    for (std::size_t i = 0; i < AcqStack::kMaxDepth; ++i) {
      EXPECT_TRUE(st.push(&locks[i], 0));
    }
    EXPECT_FALSE(st.push(&locks.back(), 0));  // full: counted, dropped
    EXPECT_EQ(stats().stack_overflow, overflow_before + 1);
    for (auto& l : locks) st.remove(&l);
    EXPECT_EQ(st.depth(), 0u);
  }).join();
}

// ---------------------------------------------------------------------
// Event ring.
// ---------------------------------------------------------------------

TEST(LockdepEventRing, PushPopWrapAndDrop) {
  EventRing r;
  lockdep::TraceEvent e;
  EXPECT_FALSE(r.pop(e));
  for (std::size_t round = 0; round < 3; ++round) {
    // Partial fill + drain exercises wraparound.
    for (std::size_t i = 0; i < EventRing::kCapacity / 2 + 3; ++i) {
      lockdep::TraceEvent in;
      in.a = static_cast<std::uint16_t>(i);
      EXPECT_TRUE(r.push(in));
    }
    std::size_t n = 0;
    while (r.pop(e)) ++n;
    EXPECT_EQ(n, EventRing::kCapacity / 2 + 3);
  }
  // Overfill: newest events drop, counted.
  for (std::size_t i = 0; i < EventRing::kCapacity + 5; ++i) {
    lockdep::TraceEvent in;
    r.push(in);
  }
  EXPECT_EQ(r.dropped(), 5u);
  std::size_t n = 0;
  while (r.pop(e)) ++n;
  EXPECT_EQ(n, EventRing::kCapacity);
}

TEST(LockdepEventRing, SpscAcrossThreads) {
  EventRing r;
  constexpr std::uint64_t kEvents = 20000;
  std::atomic<bool> done{false};
  std::uint64_t received = 0, last = 0;
  bool ordered = true;
  std::thread consumer([&] {
    lockdep::TraceEvent e;
    auto record = [&] {
      if (e.ns < last) ordered = false;
      last = e.ns;
      ++received;
    };
    for (;;) {
      if (r.pop(e)) {
        record();
        continue;
      }
      if (done.load(std::memory_order_acquire)) {
        while (r.pop(e)) record();  // final drain after the last push
        break;
      }
      std::this_thread::yield();
    }
  });
  std::uint64_t sent = 0;
  for (std::uint64_t i = 1; i <= kEvents; ++i) {
    lockdep::TraceEvent in;
    in.ns = i;
    if (r.push(in)) ++sent;
  }
  done.store(true, std::memory_order_release);
  consumer.join();
  EXPECT_TRUE(ordered);
  EXPECT_EQ(sent + r.dropped(), kEvents);
  EXPECT_EQ(sent, received);
}

TEST(LockdepTraceBuffer, ShieldMisuseArrivesAsEvent) {
  clear_trace();
  Shield<TatasLock> s(ShieldPolicy::kSuppress);
  EXPECT_FALSE(s.release());  // unbalanced unlock
  bool seen = false;
  TraceBuffer::instance().drain([&](const lockdep::TraceEvent& e) {
    if (e.lock == &s && e.kind == EventKind::kUnbalancedUnlock) {
      EXPECT_GT(e.ns, 0u);
      EXPECT_EQ(e.pid, platform::self_pid());
      seen = true;
    }
  });
  EXPECT_TRUE(seen);
}

// ---------------------------------------------------------------------
// Detection semantics through real shields.
// ---------------------------------------------------------------------

TEST(Lockdep, InversionFlaggedOnFirstOccurrenceWithoutWedge) {
  LockdepModeGuard mode(LockdepMode::kReport);
  shield::ShieldPolicyGuard pol(ShieldPolicy::kSuppress);
  clear_trace();
  Shield<TatasLock> a, b;
  const auto before = stats().inversions;
  a.acquire();
  b.acquire();  // edge a→b
  b.release();
  a.release();
  b.acquire();
  a.acquire();  // edge b→a: AB/BA closed — flagged right here, single
  EXPECT_EQ(stats().inversions, before + 1);  // threaded, nothing wedged
  a.release();
  b.release();
  // Same reversed order again: the edge is known, no report spam.
  b.acquire();
  a.acquire();
  a.release();
  b.release();
  EXPECT_EQ(stats().inversions, before + 1);

  // The report was also emitted into the event ring with the two
  // class ids of the cycle.
  bool seen = false;
  TraceBuffer::instance().drain([&](const lockdep::TraceEvent& e) {
    if (e.kind != EventKind::kOrderInversion) return;
    const auto ca = a.lockdep_class();
    const auto cb = b.lockdep_class();
    if ((e.a == ca && e.b == cb) || (e.a == cb && e.b == ca)) seen = true;
  });
  EXPECT_TRUE(seen);
}

TEST(Lockdep, DiningPhilosophersCycleDetectedSequentially) {
  LockdepModeGuard mode(LockdepMode::kReport);
  shield::ShieldPolicyGuard pol(ShieldPolicy::kSuppress);
  constexpr int kPhil = 5;
  Shield<TatasLock> fork[kPhil];
  const auto before = stats().cycles;
  // Each philosopher dines alone, in turn: no two threads, no blocking,
  // yet the last one's left-then-right pickup closes the 5-cycle.
  for (int p = 0; p < kPhil; ++p) {
    fork[p].acquire();
    fork[(p + 1) % kPhil].acquire();
    fork[(p + 1) % kPhil].release();
    fork[p].release();
  }
  EXPECT_EQ(stats().cycles, before + 1);
}

TEST(Lockdep, NoFalsePositiveOnConsistentOrderAcrossLockTypes) {
  // Acceptance gate: consistently ordered nesting across three lock
  // FAMILIES (plain word lock, FIFO counter lock, context queue lock)
  // must never report, from any number of threads.
  LockdepModeGuard mode(LockdepMode::kReport);
  shield::ShieldPolicyGuard pol(ShieldPolicy::kSuppress);
  Shield<TatasLock> outer;
  Shield<TicketLock> middle;
  Shield<McsLock> inner;
  const auto before = stats().reports();
  std::vector<std::thread> team;
  for (int t = 0; t < 3; ++t) {
    team.emplace_back([&] {
      Shield<McsLock>::Context ctx;
      for (int i = 0; i < 200; ++i) {
        outer.acquire();
        middle.acquire();
        inner.acquire(ctx);
        inner.release(ctx);
        middle.release();
        outer.release();
      }
    });
  }
  for (auto& t : team) t.join();
  EXPECT_EQ(stats().reports(), before);
}

TEST(Lockdep, HeterogeneousCycleAcrossLockTypesIsFlagged) {
  // The graph is lock-agnostic: a cycle spanning three different
  // protocols is still a cycle.
  LockdepModeGuard mode(LockdepMode::kReport);
  shield::ShieldPolicyGuard pol(ShieldPolicy::kSuppress);
  Shield<TatasLock> a;
  Shield<TicketLock> b;
  Shield<McsLock> c;
  Shield<McsLock>::Context ctx;
  const auto before = stats().cycles;
  a.acquire();
  b.acquire();
  b.release();
  a.release();
  b.acquire();
  c.acquire(ctx);
  c.release(ctx);
  b.release();
  c.acquire(ctx);
  a.acquire();  // closes a→b→c→a
  EXPECT_EQ(stats().cycles, before + 1);
  a.release();
  c.release(ctx);
}

TEST(Lockdep, TrylockAddsNoEdgesButJoinsHeldSet) {
  LockdepModeGuard mode(LockdepMode::kReport);
  shield::ShieldPolicyGuard pol(ShieldPolicy::kSuppress);
  const auto before = stats().reports();
  {
    // held-while-TRYlocking records no order: a trylock cannot wedge.
    Shield<TatasLock> a, b;
    a.acquire();
    EXPECT_TRUE(b.try_acquire());  // no edge a→b
    b.release();
    a.release();
    b.acquire();
    a.acquire();  // b→a is new but closes nothing
    a.release();
    b.release();
    EXPECT_EQ(stats().reports(), before);
  }
  {
    // ...but a TRY-acquired lock is genuinely held: blocking acquires
    // under it must record edges.
    Shield<TatasLock> x, y;
    EXPECT_TRUE(x.try_acquire());
    y.acquire();  // edge x→y
    y.release();
    x.release();
    y.acquire();
    x.acquire();  // closes x/y inversion
    x.release();
    y.release();
    EXPECT_EQ(stats().reports(), before + 1);
  }
}

TEST(Lockdep, ClassRetiredOnShieldDestruction) {
  LockdepModeGuard mode(LockdepMode::kReport);
  const auto live_before = stats().classes_live;
  {
    Shield<TatasLock> s;
    s.acquire();  // lazily registers the class
    EXPECT_TRUE(lockdep::class_tracked(s.lockdep_class()));
    EXPECT_EQ(stats().classes_live, live_before + 1);
    s.release();
  }
  EXPECT_EQ(stats().classes_live, live_before);
}

TEST(Lockdep, OffModeTracksNothing) {
  LockdepModeGuard mode(LockdepMode::kOff);
  shield::ShieldPolicyGuard pol(ShieldPolicy::kSuppress);
  Shield<TatasLock> a, b;
  const auto before = stats();
  a.acquire();
  b.acquire();
  b.release();
  a.release();
  b.acquire();
  a.acquire();
  a.release();
  b.release();
  EXPECT_EQ(stats().reports(), before.reports());
  EXPECT_EQ(stats().classes_registered, before.classes_registered);
  EXPECT_EQ(a.lockdep_class(), lockdep::kInvalidClass);  // never touched
}

TEST(Lockdep, EscapeHatchHandoffLeavesStackClean) {
  // §5 hand-off: the acquiring thread's stack entry goes stale when the
  // lock leaves it cross-thread; the next acquire's heal path must
  // purge it (no accumulation, no bogus edge sources).
  LockdepModeGuard mode(LockdepMode::kReport);
  shield::ShieldPolicyGuard pol(ShieldPolicy::kSuppress);
  const auto depth_before = AcqStack::mine().depth();
  Shield<TatasLock> s;
  s.acquire();
  {
    MisuseCheckGuard off(false);
    std::thread t([&] { EXPECT_TRUE(s.release()); });
    t.join();
  }
  EXPECT_EQ(AcqStack::mine().depth(), depth_before + 1);  // stale
  s.acquire();  // heals: purge + fresh entry
  EXPECT_EQ(AcqStack::mine().depth(), depth_before + 1);
  EXPECT_TRUE(s.release());
  EXPECT_EQ(AcqStack::mine().depth(), depth_before);
}

TEST(Lockdep, HandoffStaleEntryFeedsNoBogusEdges) {
  // After a §5 hand-off the acquirer's stack entry is stale even though
  // it never reacquires the lock. The entry must not source order
  // edges: without validation, a.acquire-handoff + b.acquire would
  // record a→b here, and the legitimate b-then-a sequence below would
  // be reported as an inversion this thread never created (a spurious
  // abort under RESILOCK_LOCKDEP=abort).
  LockdepModeGuard mode(LockdepMode::kReport);
  shield::ShieldPolicyGuard pol(ShieldPolicy::kSuppress);
  Shield<TatasLock> a;
  Shield<TatasLock> b;
  const auto before = stats().reports();
  a.acquire();
  {
    MisuseCheckGuard off(false);
    std::thread t([&] { EXPECT_TRUE(a.release()); });  // sanctioned
    t.join();
  }
  b.acquire();  // stale `a` entry is purged, NOT recorded as a→b
  EXPECT_FALSE(AcqStack::mine().contains(&a));
  b.release();
  b.acquire();
  a.acquire();  // legitimate first b-then-a order: nothing to invert
  a.release();
  b.release();
  EXPECT_EQ(stats().reports(), before);
}

TEST(LockdepDeathTest, AbortModeDiesBeforeTheWedge) {
  EXPECT_DEATH(
      {
        lockdep::set_lockdep_mode(LockdepMode::kAbort);
        shield::set_default_shield_policy(ShieldPolicy::kSuppress);
        Shield<TatasLock> a;
        Shield<TatasLock> b;
        a.acquire();
        b.acquire();
        b.release();
        a.release();
        b.acquire();
        a.acquire();  // aborts here — both locks are FREE, nothing
                      // has wedged yet
      },
      "lock-order inversion");
}

// ---------------------------------------------------------------------
// Interposition: lockdep for free through TransparentMutex.
// ---------------------------------------------------------------------

TEST(Lockdep, TransparentMutexGetsDetectionForFree) {
  LockdepModeGuard mode(LockdepMode::kReport);
  shield::ShieldPolicyGuard pol(ShieldPolicy::kSuppress);
  interpose::TransparentMutex a, b;  // env default: shield<MCS>
  const auto before = stats().inversions;
  a.lock();
  b.lock();
  b.unlock();
  a.unlock();
  b.lock();
  a.lock();
  EXPECT_EQ(stats().inversions, before + 1);
  a.unlock();
  b.unlock();
}

// ---------------------------------------------------------------------
// Verify-layer scenario matrix.
// ---------------------------------------------------------------------

TEST(LockdepMatrix, AllScenariosPassForTasTicketMcs) {
  const auto rows = verify::run_lockdep_matrix();
  verify::print_lockdep_matrix(rows);
  ASSERT_EQ(rows.size(), 3u);
  for (const auto& r : rows) {
    EXPECT_TRUE(r.ordered_clean) << r.lock;
    EXPECT_TRUE(r.inversion_flagged) << r.lock;
    EXPECT_TRUE(r.inversion_once) << r.lock;
    EXPECT_TRUE(r.cycle_flagged) << r.lock;
    if (r.wedge_applicable) {
      EXPECT_TRUE(r.wedge_forewarned) << r.lock;
      EXPECT_TRUE(r.probes_joined) << r.lock;
    }
    EXPECT_TRUE(r.all_pass()) << r.lock;
  }
  // TAS and Ticket have rescue tooling; the wedge scenario must have
  // actually run somewhere.
  EXPECT_TRUE(rows[0].wedge_applicable);
  EXPECT_TRUE(rows[1].wedge_applicable);
}
