// Unit tests for the TAS family (§3.1) and the ticket lock (§3.2):
// protocol behavior, trylock semantics, FIFO ordering, cohort hooks, and
// the resilient flavors' detection guarantees.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "core/tas.hpp"
#include "core/ticket.hpp"
#include "lock_test_util.hpp"
#include "verify/access.hpp"

using namespace resilock;
namespace rt = resilock::test;

// ----------------------------- TAS -----------------------------------

template <typename L>
class TasFamilyTest : public ::testing::Test {};
using TasTypes =
    ::testing::Types<BasicTasLock<kOriginal, TasVariant::kTas>,
                     BasicTasLock<kOriginal, TasVariant::kTatas>,
                     BasicTasLock<kOriginal, TasVariant::kBackoff>,
                     BasicTasLock<kResilient, TasVariant::kTas>,
                     BasicTasLock<kResilient, TasVariant::kTatas>,
                     BasicTasLock<kResilient, TasVariant::kBackoff>>;
TYPED_TEST_SUITE(TasFamilyTest, TasTypes);

TYPED_TEST(TasFamilyTest, SingleThreadAcquireRelease) {
  TypeParam lock;
  EXPECT_FALSE(lock.is_locked());
  lock.acquire();
  EXPECT_TRUE(lock.is_locked());
  EXPECT_TRUE(lock.release());
  EXPECT_FALSE(lock.is_locked());
}

TYPED_TEST(TasFamilyTest, MutualExclusionUnderContention) {
  TypeParam lock;
  rt::mutex_stress(lock, 4, 2000);
}

TYPED_TEST(TasFamilyTest, TryAcquireSucceedsWhenFreeFailsWhenHeld) {
  TypeParam lock;
  EXPECT_TRUE(lock.try_acquire());
  EXPECT_FALSE(lock.try_acquire());
  EXPECT_TRUE(lock.release());
  EXPECT_TRUE(lock.try_acquire());
  EXPECT_TRUE(lock.release());
}

TEST(TasResilient, UnbalancedUnlockDetectedAndStateUntouched) {
  TatasLockResilient lock;
  EXPECT_FALSE(lock.release());  // never acquired
  lock.acquire();
  EXPECT_TRUE(lock.is_locked());
  // A different thread releasing is also refused.
  std::thread t([&] { EXPECT_FALSE(lock.release()); });
  t.join();
  EXPECT_TRUE(lock.is_locked());  // still held by us
  EXPECT_TRUE(lock.release());
}

TEST(TasResilient, DoubleReleaseDetected) {
  TatasLockResilient lock;
  lock.acquire();
  EXPECT_TRUE(lock.release());
  EXPECT_FALSE(lock.release());  // second release is unbalanced
}

TEST(TasOriginal, UnbalancedUnlockSilentlyResets) {
  TatasLock lock;
  lock.acquire();
  std::thread t([&] { EXPECT_TRUE(lock.release()); });  // misuse "works"
  t.join();
  EXPECT_FALSE(lock.is_locked());  // the damage the paper describes
}

TEST(TasResilient, OwnershipQueryTracksHolder) {
  TatasLockResilient lock;
  EXPECT_FALSE(lock.is_locked_by_self());
  lock.acquire();
  EXPECT_TRUE(lock.is_locked_by_self());
  std::thread t([&] { EXPECT_FALSE(lock.is_locked_by_self()); });
  t.join();
  lock.release();
  EXPECT_FALSE(lock.is_locked_by_self());
}

// ---------------------------- Ticket ----------------------------------

template <typename L>
class TicketTest : public ::testing::Test {};
using TicketTypes = ::testing::Types<TicketLock, TicketLockResilient>;
TYPED_TEST_SUITE(TicketTest, TicketTypes);

TYPED_TEST(TicketTest, SingleThreadRoundTrips) {
  TypeParam lock;
  for (int i = 0; i < 10; ++i) {
    lock.acquire();
    EXPECT_TRUE(lock.release());
  }
}

TYPED_TEST(TicketTest, MutualExclusionUnderContention) {
  TypeParam lock;
  rt::mutex_stress(lock, 4, 2000);
}

TYPED_TEST(TicketTest, TryAcquireOnlyWhenIdle) {
  TypeParam lock;
  EXPECT_TRUE(lock.try_acquire());
  EXPECT_FALSE(lock.try_acquire());
  EXPECT_TRUE(lock.release());
}

TYPED_TEST(TicketTest, HasWaitersReflectsQueue) {
  TypeParam lock;
  lock.acquire();
  EXPECT_FALSE(lock.has_waiters());
  std::atomic<bool> entered{false};
  std::thread t([&] {
    lock.acquire();
    entered.store(true);
    lock.release();
  });
  // Wait until the waiter has taken its ticket.
  while (!lock.has_waiters()) std::this_thread::yield();
  EXPECT_FALSE(entered.load());
  lock.release();
  t.join();
  EXPECT_TRUE(entered.load());
}

TEST(TicketFifo, GrantsInTicketOrder) {
  // Deterministic FIFO check: waiters enqueue one at a time (we observe
  // nextTicket), then the lock is released repeatedly; entry order must
  // equal enqueue order.
  TicketLock lock;
  lock.acquire();
  constexpr int kWaiters = 4;
  std::vector<int> order;
  std::atomic<int> done{0};
  std::vector<std::thread> threads;
  for (int i = 0; i < kWaiters; ++i) {
    const auto before = VerifyAccess::ticket_next(lock);
    threads.emplace_back([&, i] {
      lock.acquire();
      order.push_back(i);  // safe: we hold the lock
      lock.release();
      done.fetch_add(1);
    });
    // Wait until thread i holds ticket `before` (strict enqueue order).
    while (VerifyAccess::ticket_next(lock) == before)
      std::this_thread::yield();
  }
  lock.release();
  while (done.load() != kWaiters) std::this_thread::yield();
  for (auto& t : threads) t.join();
  ASSERT_EQ(order.size(), static_cast<std::size_t>(kWaiters));
  for (int i = 0; i < kWaiters; ++i) EXPECT_EQ(order[i], i);
}

TEST(TicketResilient, MisuseDetectedAndHarmless) {
  TicketLockResilient lock;
  EXPECT_FALSE(lock.release());  // fresh lock
  lock.acquire();
  std::thread t([&] { EXPECT_FALSE(lock.release()); });
  t.join();
  EXPECT_TRUE(lock.release());
  // Still serviceable afterwards.
  lock.acquire();
  EXPECT_TRUE(lock.release());
}

TEST(TicketOriginal, MisuseMakesNowServingLeap) {
  TicketLock lock;
  lock.acquire();  // ticket 0
  EXPECT_TRUE(lock.release());
  EXPECT_TRUE(lock.release());  // misuse: nowServing leaps to 2
  EXPECT_GT(VerifyAccess::ticket_serving(lock),
            VerifyAccess::ticket_next(lock));
}
