// In-process tests for the preload adoption registry — including the
// adopt-once race the LD_PRELOAD fixture cannot exercise under TSan
// (a sanitized .so cannot be preloaded into an unsanitized child, so
// this is the TSan job's view of the static-initializer race).
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <set>
#include <thread>
#include <vector>

#include "interpose/preload_registry.hpp"
#include "interpose/pthread_shim.hpp"

namespace ri = resilock::interpose;
using ri::rl_mutex_t;
using ri::rl_rwlock_t;
using ri::rl_mutex_lock;
using ri::rl_mutex_unlock;
using ri::rl_rwlock_rdlock;
using ri::rl_rwlock_wrlock;
using ri::rl_rwlock_unlock;

namespace {

// The registry singleton is process-wide, so tests assert on DELTAS of
// its counters, and every test uses fresh fake addresses.
ri::PreloadRegistryStats snap() {
  return ri::PreloadRegistry::instance().stats();
}

// Fake "pthread_mutex_t" storage: the registry only keys on the
// address, it never dereferences the app's lock memory.
struct FakeLock {
  alignas(64) unsigned char bytes[64];
};

}  // namespace

TEST(PreloadRegistry, AdoptOnceUnderContention) {
  constexpr int kThreads = 8;
  constexpr int kLocksPerRound = 16;
  const ri::PreloadRegistryStats before = snap();

  std::vector<FakeLock> addrs(kLocksPerRound);
  std::vector<rl_mutex_t*> seen[kThreads];
  std::atomic<int> gate{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      gate.fetch_add(1, std::memory_order_acq_rel);
      while (gate.load(std::memory_order_acquire) < kThreads) {
      }
      for (int i = 0; i < kLocksPerRound; ++i) {
        seen[t].push_back(
            ri::PreloadRegistry::instance().mutex_for(&addrs[i]));
      }
    });
  }
  for (auto& th : threads) th.join();

  // Every thread resolved every address to the same handle.
  for (int i = 0; i < kLocksPerRound; ++i) {
    for (int t = 1; t < kThreads; ++t) {
      EXPECT_EQ(seen[0][i], seen[t][i]) << "addr " << i;
    }
  }
  // And each address was adopted exactly once despite the race.
  const ri::PreloadRegistryStats after = snap();
  EXPECT_EQ(after.adopted_mutexes - before.adopted_mutexes,
            static_cast<std::uint64_t>(kLocksPerRound));
  EXPECT_EQ(after.live_nodes - before.live_nodes,
            static_cast<std::uint64_t>(kLocksPerRound));

  // The adopted handles are real, working locks.
  EXPECT_EQ(rl_mutex_lock(seen[0][0]), 0);
  EXPECT_EQ(rl_mutex_unlock(seen[0][0]), 0);
  for (int i = 0; i < kLocksPerRound; ++i) {
    ri::PreloadRegistry::instance().destroy_mutex(&addrs[i]);
  }
}

TEST(PreloadRegistry, FindOnlySeesAdoptedAddresses) {
  FakeLock a, b;
  EXPECT_EQ(ri::PreloadRegistry::instance().find_mutex(&a), nullptr);
  rl_mutex_t* h = ri::PreloadRegistry::instance().mutex_for(&a);
  ASSERT_NE(h, nullptr);
  EXPECT_EQ(ri::PreloadRegistry::instance().find_mutex(&a), h);
  EXPECT_EQ(ri::PreloadRegistry::instance().find_mutex(&b), nullptr);
  ri::PreloadRegistry::instance().destroy_mutex(&a);
  // Tombstoned: invisible to find, but adoptable again.
  EXPECT_EQ(ri::PreloadRegistry::instance().find_mutex(&a), nullptr);
  rl_mutex_t* h2 = ri::PreloadRegistry::instance().mutex_for(&a);
  ASSERT_NE(h2, nullptr);
  EXPECT_EQ(rl_mutex_lock(h2), 0);
  EXPECT_EQ(rl_mutex_unlock(h2), 0);
  ri::PreloadRegistry::instance().destroy_mutex(&a);
}

TEST(PreloadRegistry, InitReplacesLiveHandle) {
  FakeLock a;
  const ri::PreloadRegistryStats before = snap();
  rl_mutex_t* h1 = ri::PreloadRegistry::instance().init_mutex(&a);
  ASSERT_NE(h1, nullptr);
  // Re-init at the same address: same slot, fresh handle underneath
  // (the pointer is stable because nodes are never freed).
  rl_mutex_t* h2 = ri::PreloadRegistry::instance().init_mutex(&a);
  EXPECT_EQ(h1, h2);
  const ri::PreloadRegistryStats after = snap();
  EXPECT_EQ(after.init_mutexes - before.init_mutexes, 2u);
  EXPECT_EQ(after.live_nodes - before.live_nodes, 1u);
  EXPECT_EQ(rl_mutex_lock(h2), 0);
  EXPECT_EQ(rl_mutex_unlock(h2), 0);
  ri::PreloadRegistry::instance().destroy_mutex(&a);
}

TEST(PreloadRegistry, DestroyOfUnknownAddressIsBenign) {
  FakeLock a;
  // Destroy of a never-used static initializer: a no-op, not an error.
  EXPECT_EQ(ri::PreloadRegistry::instance().destroy_mutex(&a), 0);
  EXPECT_EQ(ri::PreloadRegistry::instance().destroy_rwlock(&a), 0);
}

TEST(PreloadRegistry, RwlockAdoptionAndUse) {
  constexpr int kThreads = 4;
  FakeLock a;
  const ri::PreloadRegistryStats before = snap();
  std::atomic<int> gate{0};
  rl_rwlock_t* handles[kThreads] = {};
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      gate.fetch_add(1, std::memory_order_acq_rel);
      while (gate.load(std::memory_order_acquire) < kThreads) {
      }
      rl_rwlock_t* h = ri::PreloadRegistry::instance().rwlock_for(&a);
      handles[t] = h;
      // Readers overlap; each holds briefly to overlap the others.
      EXPECT_EQ(rl_rwlock_rdlock(h), 0);
      EXPECT_EQ(rl_rwlock_unlock(h), 0);
    });
  }
  for (auto& th : threads) th.join();
  for (int t = 1; t < kThreads; ++t) EXPECT_EQ(handles[0], handles[t]);
  const ri::PreloadRegistryStats after = snap();
  EXPECT_EQ(after.adopted_rwlocks - before.adopted_rwlocks, 1u);
  // Write side works on the adopted handle too.
  EXPECT_EQ(rl_rwlock_wrlock(handles[0]), 0);
  EXPECT_EQ(rl_rwlock_unlock(handles[0]), 0);
  ri::PreloadRegistry::instance().destroy_rwlock(&a);
}
