// End-to-end LD_PRELOAD fixture: compiles the shim-unaware pthread
// programs in tests/children/ at test time (with the same compiler
// that built this test), runs them under libresilock_preload.so, and
// asserts on what an operator would see — program output, the misuse
// trace JSONL, the SIGUSR2 lock_stat report, and the preload's own
// adoption counters.
//
// Skipped under TSan (CMake gates the target): a sanitized .so cannot
// be preloaded into an unsanitized child. The adopt-once machinery has
// an in-process TSan test instead (test_preload_registry.cpp).
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>

#ifndef RESILOCK_PRELOAD_LIB
#error "CMake must define RESILOCK_PRELOAD_LIB"
#endif
#ifndef RESILOCK_CHILD_SRC_DIR
#error "CMake must define RESILOCK_CHILD_SRC_DIR"
#endif
#ifndef RESILOCK_CXX_COMPILER
#error "CMake must define RESILOCK_CXX_COMPILER"
#endif

namespace {

struct RunResult {
  int exit_code = -1;
  std::string out;
};

std::string slurp(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

// system(3) with captured stdout+stderr; the preload children are
// whole processes, so popen-style capture is the natural harness.
RunResult run(const std::string& cmd) {
  RunResult r;
  const std::string out_path =
      ::testing::TempDir() + "preload_child_out.txt";
  const int rc =
      std::system((cmd + " > " + out_path + " 2>&1").c_str());
  r.exit_code = rc;
  r.out = slurp(out_path);
  std::remove(out_path.c_str());
  return r;
}

// Compile-once cache: every test in this file shares the two child
// binaries; gtest runs tests in one process, so function-local statics
// do the memoization.
const std::string& child_bin(const std::string& name) {
  static std::string dir = ::testing::TempDir();
  static std::string compiler = RESILOCK_CXX_COMPILER;
  struct Built {
    std::string path;
    bool ok;
  };
  static auto build = [](const std::string& n) {
    Built b;
    b.path = dir + "resilock_" + n;
    // -rdynamic: lockstat symbolizes call sites with dladdr, which
    // only sees exported symbols — exactly how an operator would
    // build an app they intend to profile.
    const std::string cmd = compiler + " -O1 -g -pthread -rdynamic " +
                            std::string(RESILOCK_CHILD_SRC_DIR) + "/" +
                            n + ".cpp -o " + b.path;
    b.ok = std::system(cmd.c_str()) == 0;
    return b;
  };
  static Built child = build("preload_child");
  static Built static_init = build("preload_static_init");
  static Built clock_child = build("preload_clock_child");
  static const Built none{"", false};
  const Built& b =
      name == "preload_child"
          ? child
          : (name == "preload_static_init"
                 ? static_init
                 : (name == "preload_clock_child" ? clock_child : none));
  EXPECT_TRUE(b.ok) << "failed to compile child " << name;
  return b.path;
}

std::string preload_env() {
  return std::string("LD_PRELOAD=") + RESILOCK_PRELOAD_LIB +
         " RESILOCK_SHIELD=1";
}

}  // namespace

// (a) Correct output through the whole interposition stack: four
// threads of counter traffic over an adopted static-initializer mutex
// add up exactly, and the injected double-unlock comes back EPERM
// instead of corrupting the protocol (the program keeps running to a
// clean exit).
TEST(PreloadE2E, ShieldedChildComputesCorrectlyAndAbsorbsMisuse) {
  const std::string trace =
      ::testing::TempDir() + "preload_trace.jsonl";
  std::remove(trace.c_str());
  RunResult r = run("env " + preload_env() +
                    " RESILOCK_TRACE_FILE=" + trace + " " +
                    child_bin("preload_child"));
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_NE(r.out.find("total=80000\n"), std::string::npos) << r.out;
  // EPERM == 1 on Linux: the shield's errorcheck-style report.
  EXPECT_NE(r.out.find("double-unlock-rc=1"), std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("child-exit"), std::string::npos) << r.out;

  // (b) The misuse landed in the trace pipeline with the absorb
  // verdict — evidence an unmodified binary gets the paper's §5
  // observability, not just survival.
  const std::string t = slurp(trace);
  EXPECT_NE(t.find("\"kind\":\"double-unlock\""), std::string::npos)
      << t;
  EXPECT_NE(t.find("\"verdict\":\"suppress\""), std::string::npos)
      << t;
  std::remove(trace.c_str());
}

// (c) SIGUSR2 at runtime produces a lock_stat report that names the
// child's own function — the call-site attribution must pierce the
// interposition layer (the return address inside libresilock_preload
// would be useless to an operator).
TEST(PreloadE2E, SigusrDumpNamesChildCallSites) {
  const std::string report =
      ::testing::TempDir() + "preload_lockstat.txt";
  std::remove(report.c_str());
  RunResult r = run("env " + preload_env() +
                    " RESILOCK_LOCKSTAT=1 RESILOCK_LOCKSTAT_FILE=" +
                    report + " " + child_bin("preload_child"));
  EXPECT_EQ(r.exit_code, 0) << r.out;
  const std::string rep = slurp(report);
  EXPECT_NE(rep.find("lock_stat"), std::string::npos) << rep;
  EXPECT_NE(rep.find("call sites"), std::string::npos) << rep;
  EXPECT_NE(rep.find("worker_loop"), std::string::npos)
      << "lock_stat did not name the child's call site:\n"
      << rep;
  std::remove(report.c_str());
}

// Static-initializer adoption is exactly-once under a 4-thread race:
// the preload's stats JSON counts one adoption for the one mutex, and
// the counter total proves the four threads really did serialize on a
// single shield instance (two instances would lose increments).
TEST(PreloadE2E, StaticInitializerAdoptedExactlyOnce) {
  const std::string stats =
      ::testing::TempDir() + "preload_stats.json";
  std::remove(stats.c_str());
  RunResult r = run("env " + preload_env() +
                    " RESILOCK_PRELOAD_STATS_FILE=" + stats + " " +
                    child_bin("preload_static_init"));
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_NE(r.out.find("static-init-total=20000\n"), std::string::npos)
      << r.out;
  const std::string s = slurp(stats);
  EXPECT_NE(s.find("\"adopted_mutexes\":1"), std::string::npos) << s;
  std::remove(stats.c_str());
}

// The glibc 2.30+ clock entry points are interposed too: a child that
// mixes pthread_mutex_lock and pthread_mutex_clocklock threads over
// one mutex keeps an exact total (un-interposed clock variants would
// lock the raw glibc object while the others hold the adopted handle
// — no mutual exclusion), monotonic deadlines produce ETIMEDOUT
// against held locks, unsupported clocks produce EINVAL, and a
// cond_clockwait with no signaler times out with the lock reacquired.
// The churn loop at the end exercises the cond-shadow reclamation in
// pthread_cond_destroy.
TEST(PreloadE2E, ClockVariantsRouteThroughAdoptedHandles) {
  RunResult r = run("env " + preload_env() + " " +
                    child_bin("preload_clock_child"));
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_NE(r.out.find("clock-total=80000\n"), std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("clocklock-timeout=ok"), std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("clocklock-einval=ok"), std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("clockrdlock-timeout=ok"), std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("clockrwlock-free=ok"), std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("clockwait-timeout=ok"), std::string::npos)
      << r.out;
  EXPECT_NE(r.out.find("cond-churn=done"), std::string::npos) << r.out;
  EXPECT_NE(r.out.find("clock-child-exit"), std::string::npos) << r.out;
}

// RESILOCK_SHIELD=0 control: the preload still interposes (the stats
// file shows the adoption) but routes to the bare algorithm. The
// arithmetic must still hold — this pins down that interposition
// itself, not just the shield, preserves mutual exclusion.
TEST(PreloadE2E, BareAlgorithmModeStillExcludes) {
  const std::string stats =
      ::testing::TempDir() + "preload_stats_bare.json";
  std::remove(stats.c_str());
  RunResult r = run(std::string("env LD_PRELOAD=") +
                    RESILOCK_PRELOAD_LIB +
                    " RESILOCK_SHIELD=0 RESILOCK_PRELOAD_STATS_FILE=" +
                    stats + " " + child_bin("preload_static_init"));
  EXPECT_EQ(r.exit_code, 0) << r.out;
  EXPECT_NE(r.out.find("static-init-total=20000\n"), std::string::npos)
      << r.out;
  const std::string s = slurp(stats);
  EXPECT_NE(s.find("\"adopted_mutexes\":1"), std::string::npos) << s;
  std::remove(stats.c_str());
}
