// Direct coverage for the per-level lockdep attribution of the
// hierarchical locks (core/{hmcs,hclh,ahmcs}.hpp):
//   * a 3-level fanout tree puts one acquisition-stack entry per level
//     on the holder's stack, each tagged with the level's shared class;
//   * the AHMCS adaptive fast path joins mid-tree and must tag ONLY
//     from its entry level (the root), not the leaf it bypassed;
//   * concurrent same-level acquisitions across threads and leaves
//     share ONE class slot per level (the whole point of level keys:
//     a tree occupies `levels` slots, not `nodes` or `threads`);
//   * @class=-scoped response rules resolve a level label to a ClassId
//     at install time and fire only for that class;
//   * the HierMatrix gate runs the full verify matrix (CI runs this
//     filter as its own step, and the whole binary under TSan).
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <string>
#include <vector>

#include "core/ahmcs.hpp"
#include "core/hclh.hpp"
#include "core/hmcs.hpp"
#include "lockdep/lockdep.hpp"
#include "response/response.hpp"
#include "runtime/thread_team.hpp"
#include "shield/policy.hpp"
#include "verify/hier_matrix.hpp"

using namespace resilock;

namespace {

std::atomic<std::uint64_t> g_trap_count{0};
void counting_trap(response::ResponseEvent, const void*) {
  g_trap_count.fetch_add(1, std::memory_order_relaxed);
}

// The calling thread's acquisition-stack classes (multiset — absorbed
// recursion aside, one entry per held level).
std::vector<lockdep::ClassId> my_stack_classes() {
  std::vector<lockdep::ClassId> out;
  const auto& st = lockdep::AcqStack::mine();
  for (const auto& e : st) out.push_back(e.cls);
  return out;
}

}  // namespace

// ---------------------------------------------------------------------
// Per-level stack entries.
// ---------------------------------------------------------------------

TEST(HierLockdep, ThreeLevelHoldTagsEveryLevel) {
  lockdep::LockdepModeGuard mode(lockdep::LockdepMode::kReport);
  BasicHmcsLock<kResilient> tree(std::vector<std::uint32_t>{2, 2});
  ASSERT_EQ(tree.tracked_levels(), 3u);
  BasicHmcsLock<kResilient>::Context ctx;
  const std::size_t depth_before = lockdep::AcqStack::mine().depth();
  tree.acquire(ctx);
  const auto classes = my_stack_classes();
  EXPECT_EQ(classes.size(), depth_before + 3);
  // Every level class is registered and present on the stack exactly
  // once, in leaf→root acquisition order.
  for (std::uint32_t lvl = 0; lvl < 3; ++lvl) {
    const lockdep::ClassId cls = tree.level_class(lvl);
    ASSERT_TRUE(lockdep::class_tracked(cls)) << "level " << lvl;
    EXPECT_EQ(std::count(classes.begin(), classes.end(), cls), 1)
        << "level " << lvl;
  }
  EXPECT_STREQ(lockdep::Graph::instance().label_of(tree.level_class(0)),
               "hmcs.level0");
  EXPECT_STREQ(lockdep::Graph::instance().label_of(tree.level_class(2)),
               "hmcs.level2");
  EXPECT_TRUE(tree.release(ctx));
  EXPECT_EQ(lockdep::AcqStack::mine().depth(), depth_before);
}

TEST(HierLockdep, HclhHoldTagsBothLevels) {
  lockdep::LockdepModeGuard mode(lockdep::LockdepMode::kReport);
  BasicHclhLock<kResilient> lock(platform::Topology::uniform(2, 2));
  BasicHclhLock<kResilient>::Context ctx;
  const std::size_t depth_before = lockdep::AcqStack::mine().depth();
  lock.acquire(ctx);
  const auto classes = my_stack_classes();
  EXPECT_EQ(classes.size(), depth_before + 2);
  EXPECT_EQ(std::count(classes.begin(), classes.end(),
                       lock.level_class(0)),
            1);
  EXPECT_EQ(std::count(classes.begin(), classes.end(),
                       lock.level_class(1)),
            1);
  EXPECT_STREQ(lockdep::Graph::instance().label_of(lock.level_class(0)),
               "hclh.level0");
  EXPECT_TRUE(lock.release(ctx));
  EXPECT_EQ(lockdep::AcqStack::mine().depth(), depth_before);
}

// ---------------------------------------------------------------------
// AHMCS adaptive entry.
// ---------------------------------------------------------------------

TEST(HierLockdep, AhmcsAdaptiveEntryTagsOnlyFromEntryLevel) {
  lockdep::LockdepModeGuard mode(lockdep::LockdepMode::kReport);
  BasicAhmcsLock<kResilient> lock(std::vector<std::uint32_t>{2, 2});
  BasicAhmcsLock<kResilient>::Context ctx;
  const std::size_t depth_before = lockdep::AcqStack::mine().depth();

  // Leaf-path entry: all three levels held and tagged.
  lock.acquire(ctx);
  EXPECT_EQ(lockdep::AcqStack::mine().depth(), depth_before + 3);
  EXPECT_TRUE(lock.release(ctx));

  // Build the uncontended streak (the first acquisition above already
  // counted); the next acquire joins at the ROOT.
  for (int i = 0; i < 8; ++i) {
    lock.acquire(ctx);
    EXPECT_TRUE(lock.release(ctx));
  }
  lock.acquire(ctx);
  const auto classes = my_stack_classes();
  EXPECT_EQ(classes.size(), depth_before + 1)
      << "adaptive root entry must tag exactly one level";
  EXPECT_EQ(classes.back(), lock.level_class(0));
  EXPECT_STREQ(lockdep::Graph::instance().label_of(lock.level_class(0)),
               "ahmcs.level0");
  EXPECT_TRUE(lock.release(ctx));
  EXPECT_EQ(lockdep::AcqStack::mine().depth(), depth_before);
}

// ---------------------------------------------------------------------
// Class-slot economy under concurrency.
// ---------------------------------------------------------------------

TEST(HierLockdep, ConcurrentSameLevelAcquisitionsShareOneClassSlot) {
  lockdep::LockdepModeGuard mode(lockdep::LockdepMode::kReport);
  const auto before = lockdep::Graph::instance().stats();
  {
    // 3 levels, 9 leaves, 6 threads hammering concurrently: the racing
    // lazy registrations must still produce exactly three classes.
    BasicHmcsLock<kResilient> tree(std::vector<std::uint32_t>{3, 3});
    runtime::ThreadTeam::run(6, [&](std::uint32_t) {
      BasicHmcsLock<kResilient>::Context ctx;
      for (int i = 0; i < 200; ++i) {
        tree.acquire(ctx);
        EXPECT_TRUE(tree.release(ctx));
      }
    });
    const auto during = lockdep::Graph::instance().stats();
    EXPECT_EQ(during.classes_live, before.classes_live + 3);
    std::set<lockdep::ClassId> distinct;
    for (std::uint32_t lvl = 0; lvl < 3; ++lvl) {
      const lockdep::ClassId cls = tree.level_class(lvl);
      EXPECT_TRUE(lockdep::class_tracked(cls));
      EXPECT_TRUE(lockdep::Graph::instance().is_shared(cls));
      distinct.insert(cls);
    }
    EXPECT_EQ(distinct.size(), 3u);
  }
  // Destruction returns the level slots.
  EXPECT_EQ(lockdep::Graph::instance().stats().classes_live,
            before.classes_live);
}

// ---------------------------------------------------------------------
// @class= rule scoping (install-time ClassId resolution).
// ---------------------------------------------------------------------

TEST(HierLockdep, ClassScopedRuleResolvesAtInstallAndPinsOneTree) {
  lockdep::LockdepModeGuard mode(lockdep::LockdepMode::kReport);
  shield::ShieldPolicyGuard policy(shield::ShieldPolicy::kSuppress);
  BasicHmcsLock<kResilient> tree(std::vector<std::uint32_t>{2});
  BasicHmcsLock<kResilient>::Context ctx;
  tree.acquire(ctx);
  EXPECT_TRUE(tree.release(ctx));  // registers hmcs.level0/1

  response::ResponseRulesGuard rules(
      "unbalanced-unlock@class=hmcs.level1=abort;*=suppress");
  const auto installed = response::ResponseEngine::instance().rules();
  ASSERT_EQ(installed.size(), 2u);
  EXPECT_EQ(installed[0].cond, response::Condition::kClassScope);
  EXPECT_EQ(installed[0].cls_name, "hmcs.level1");
  // Install-time resolution pinned the live class id.
  EXPECT_EQ(installed[0].cls, tree.level_class(1));

  response::ScopedAbortHandler trap(&counting_trap);
  const std::uint64_t before =
      g_trap_count.load(std::memory_order_relaxed);
  BasicHmcsLock<kResilient>::Context bogus;
  EXPECT_FALSE(tree.release(bogus));  // misuse at the scoped level
  EXPECT_EQ(g_trap_count.load(std::memory_order_relaxed), before + 1);

  // A SECOND tree shares the label but not the pinned id: its misuse
  // takes the suppress rule, not the scoped abort.
  BasicHmcsLock<kResilient> other(std::vector<std::uint32_t>{2});
  BasicHmcsLock<kResilient>::Context octx;
  other.acquire(octx);
  EXPECT_TRUE(other.release(octx));
  BasicHmcsLock<kResilient>::Context obogus;
  EXPECT_FALSE(other.release(obogus));
  EXPECT_EQ(g_trap_count.load(std::memory_order_relaxed), before + 1);
}

TEST(HierLockdep, ClassScopedRuleInstalledBeforeRegistrationMatchesByLabel) {
  lockdep::LockdepModeGuard mode(lockdep::LockdepMode::kReport);
  // Installed while no hclh class exists anywhere: stays unresolved,
  // matches by label once the class registers.
  response::ResponseRulesGuard rules(
      "unbalanced-unlock@class=hier.test.none=log;*=suppress");
  const auto installed = response::ResponseEngine::instance().rules();
  ASSERT_EQ(installed.size(), 2u);
  EXPECT_EQ(installed[0].cls, response::kNoClass);
  // Label matching against a context that names no class: no match.
  response::EventContext ectx;
  EXPECT_FALSE(installed[0].matches(
      response::ResponseEvent::kUnbalancedUnlock, ectx));
  ectx.cls_label = "hier.test.none";
  ectx.cls = 7;
  EXPECT_TRUE(installed[0].matches(
      response::ResponseEvent::kUnbalancedUnlock, ectx));
}

// ---------------------------------------------------------------------
// The verify matrix (CI runs this filter as a dedicated step).
// ---------------------------------------------------------------------

TEST(HierMatrix, AllGatesAcrossConfigurations) {
  const auto rows = verify::run_hier_matrix();
  verify::print_hier_matrix(rows);
  ASSERT_EQ(rows.size(), 5u);
  for (const auto& r : rows) {
    EXPECT_TRUE(r.ordered_clean) << r.config;
    EXPECT_TRUE(r.inversion_at_level) << r.config;
    EXPECT_TRUE(r.inversion_once) << r.config;
    EXPECT_TRUE(r.climb_edge_free) << r.config;
    EXPECT_TRUE(r.misuse_intercepted) << r.config;
    EXPECT_TRUE(r.misuse_attributed) << r.config;
    EXPECT_TRUE(r.scoped_rule_fired) << r.config;
    EXPECT_TRUE(r.scoped_rule_scoped) << r.config;
    EXPECT_TRUE(r.all_pass()) << r.config;
  }
}
