// Unit tests for the context-free queue locks: MCS-K42 (§3.6) and
// Hemlock (§3.7).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/hemlock.hpp"
#include "core/mcs_k42.hpp"
#include "lock_test_util.hpp"
#include "verify/access.hpp"
#include "verify/checkers.hpp"

using namespace resilock;
namespace rt = resilock::test;
namespace rv = resilock::verify;

// ---------------------------- MCS-K42 ---------------------------------

template <typename L>
class K42Test : public ::testing::Test {};
using K42Types = ::testing::Types<McsK42Lock, McsK42LockResilient>;
TYPED_TEST_SUITE(K42Test, K42Types);

TYPED_TEST(K42Test, SingleThreadRoundTrips) {
  TypeParam lock;
  for (int i = 0; i < 100; ++i) {
    lock.acquire();
    EXPECT_TRUE(lock.release());
  }
}

TYPED_TEST(K42Test, MutualExclusionUnderContention) {
  TypeParam lock;
  rt::mutex_stress(lock, 4, 2000);
}

TYPED_TEST(K42Test, MutualExclusionHighContention) {
  // Stack-allocated qnodes + head migration is the delicate part of
  // K42; stress it harder with more threads than cores.
  TypeParam lock;
  rt::mutex_stress(lock, 8, 500);
}

TYPED_TEST(K42Test, TryAcquireSemantics) {
  TypeParam lock;
  EXPECT_TRUE(lock.try_acquire());
  EXPECT_FALSE(lock.try_acquire());
  EXPECT_TRUE(lock.release());
}

TEST(K42Resilient, MisuseOnFreeLockRefused) {
  McsK42LockResilient lock;
  EXPECT_FALSE(lock.release());  // original would spin forever
}

TEST(K42Resilient, MisuseByNonOwnerRefused) {
  McsK42LockResilient lock;
  lock.acquire();
  std::thread t([&] { EXPECT_FALSE(lock.release()); });
  t.join();
  EXPECT_TRUE(lock.release());
}

TEST(K42Original, MisuseOnFreeLockStrandsTm) {
  McsK42Lock lock;
  VerifyAccess::K42Node<kOriginal> dummy;
  rv::Probe tm([&] { lock.release(); });
  EXPECT_FALSE(tm.finished_within());
  VerifyAccess::k42_publish_head(lock, dummy);  // rescue
  tm.join();
}

TEST(K42Original, MisuseWhileHeldFreesLockUnderHolder) {
  // §3.6 "mutex violation" + "any thread starvation" preconditions: the
  // misuse succeeds and the tail no longer claims the lock is held.
  McsK42Lock lock;
  std::atomic<bool> t1_out{false};
  std::atomic<bool> t1_release_done{false};
  rv::Probe t1([&] {
    lock.acquire();
    rv::wait_for([&] { return t1_out.load(); }, rv::milliseconds{3000});
    lock.release();
    t1_release_done.store(true);
  });
  rv::wait_for([&] { return VerifyAccess::k42_tail(lock) != nullptr; });
  EXPECT_TRUE(lock.release());  // misuse: CAS(&q_ -> null) succeeds
  EXPECT_EQ(VerifyAccess::k42_tail(lock), nullptr);  // looks free!
  t1_out.store(true);
  // The legitimate holder's release now has no queue to release into.
  EXPECT_FALSE(rv::wait_for([&] { return t1_release_done.load(); }));
  VerifyAccess::K42Node<kOriginal> dummy;
  VerifyAccess::k42_publish_head(lock, dummy);  // rescue
  t1.join();
}

// ---------------------------- Hemlock ----------------------------------

template <typename L>
class HemlockTest : public ::testing::Test {};
using HemlockTypes = ::testing::Types<Hemlock, HemlockResilient>;
TYPED_TEST_SUITE(HemlockTest, HemlockTypes);

TYPED_TEST(HemlockTest, SingleThreadRoundTrips) {
  TypeParam lock;
  for (int i = 0; i < 100; ++i) {
    lock.acquire();
    EXPECT_TRUE(lock.release());
  }
}

TYPED_TEST(HemlockTest, MutualExclusionUnderContention) {
  TypeParam lock;
  rt::mutex_stress(lock, 4, 2000);
}

TYPED_TEST(HemlockTest, TryAcquireSemantics) {
  TypeParam lock;
  EXPECT_TRUE(lock.try_acquire());
  EXPECT_FALSE(lock.try_acquire());
  EXPECT_TRUE(lock.release());
}

TYPED_TEST(HemlockTest, TwoLocksShareOneGrantCellSafely) {
  // Hemlock's signature property: one thread-local Grant cell serves
  // every lock instance. Nested hold of two locks must work.
  TypeParam lock_a, lock_b;
  std::uint64_t counter = 0;
  runtime::ThreadTeam::run(4, [&](std::uint32_t) {
    for (int i = 0; i < 500; ++i) {
      lock_a.acquire();
      lock_b.acquire();
      ++counter;
      EXPECT_TRUE(lock_b.release());
      EXPECT_TRUE(lock_a.release());
    }
  });
  EXPECT_EQ(counter, 2000u);
}

TEST(HemlockResilient, MisuseDetectedImmediately) {
  HemlockResilient lock;
  EXPECT_FALSE(lock.release());  // original would self-starve here
  lock.acquire();
  EXPECT_TRUE(lock.release());
  EXPECT_FALSE(lock.release());
}

TEST(HemlockResilient, NestedHoldsSurviveInnerRelease) {
  // The ACQ sentinel is restored while other Hemlocks are still held
  // (the nesting case the paper's Figure 9 does not discuss).
  HemlockResilient a, b;
  a.acquire();
  b.acquire();
  EXPECT_TRUE(b.release());
  EXPECT_TRUE(a.release());   // must not be flagged as unbalanced
  EXPECT_FALSE(a.release());  // but a third release is
}

TEST(HemlockOriginal, MisuseSelfStarves) {
  Hemlock lock;
  std::atomic<std::atomic<void*>*> cell{nullptr};
  rv::Probe tm([&] {
    cell.store(VerifyAccess::hemlock_cell_of_current_thread());
    lock.release();
  });
  EXPECT_FALSE(tm.finished_within());
  cell.load()->store(nullptr, std::memory_order_release);  // rescue
  tm.join();
  // Lock state untouched by the whole episode: still acquirable.
  lock.acquire();
  EXPECT_TRUE(lock.release());
}
