// Scale and reclamation coverage for the sharded, chunk-growable
// lockdep class table (PR 9):
//   * growth past the old fixed 1024-slot limit under multi-thread
//     registration churn — ids stay valid, labels stay attributable;
//   * epoch grace: a retired slot is NOT physically recycled while any
//     reader pin predating the retirement is live (the replacement for
//     the old global dfs_inflight drain);
//   * generation-stamped ids: a recycled slot's new tenant never
//     inherits the previous tenant's lockstat blocks or edges;
//   * shard freelist work-stealing when the caller's home shard runs
//     dry while other shards hold recycled slots;
//   * randomized register/retire fuzz reconciling the live-class count
//     and per-id labels against the graph's own accounting, ending
//     with a drained (zero-entry) limbo list.
// CI runs this whole binary under TSan as well.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <random>
#include <vector>

#include "lockdep/lockdep.hpp"
#include "observe/lockstat.hpp"
#include "runtime/thread_team.hpp"

using namespace resilock;
using lockdep::ClassId;
using lockdep::Graph;

namespace {

// Leftover limbo entries from other tests in this binary would perturb
// the reclaim counts below; drain until quiescent.
void drain_limbo(Graph& g) {
  while (g.try_reclaim() > 0) {
  }
}

}  // namespace

// ---------------------------------------------------------------------
// Chunk growth.
// ---------------------------------------------------------------------

TEST(LockdepScale, GrowsPastLegacyLimitUnderThreadedChurn) {
  auto& g = Graph::instance();
  const auto before = g.stats();
  constexpr std::uint32_t kThreads = 8;
  constexpr int kPerThread = 400;  // peak live well past 1024
  std::vector<std::vector<ClassId>> ids(kThreads);
  runtime::ThreadTeam::run(kThreads, [&](std::uint32_t t) {
    auto& mine = ids[t];
    for (int i = 0; i < kPerThread; ++i) {
      const ClassId c = g.register_class(&mine, "scale.churn");
      EXPECT_TRUE(lockdep::class_tracked(c));
      mine.push_back(c);
      // Churn a third back so registration, retirement, limbo, and
      // reclaim all race the growth path.
      if (i % 3 == 0) {
        g.retire_class(mine.front());
        mine.erase(mine.begin());
      }
    }
  });
  std::size_t live_now = 0;
  for (const auto& v : ids) live_now += v.size();
  EXPECT_GT(live_now, 1024u);  // the old kMaxClasses would have refused
  const auto after = g.stats();
  EXPECT_EQ(after.classes_live, before.classes_live + live_now);
  EXPECT_GT(after.capacity, 1024u);
  EXPECT_GE(after.chunks, 2u);
  // Every survivor still answers with its label — no id moved during
  // growth, no recycle aliased a live slot.
  for (const auto& v : ids) {
    for (const ClassId c : v) {
      ASSERT_STREQ(g.label_of(c), "scale.churn");
    }
  }
  for (const auto& v : ids) {
    for (const ClassId c : v) g.retire_class(c);
  }
  EXPECT_EQ(g.stats().classes_live, before.classes_live);
  drain_limbo(g);
}

// ---------------------------------------------------------------------
// Epoch grace.
// ---------------------------------------------------------------------

TEST(LockdepScale, RetireDoesNotRecycleWhileReaderPinned) {
  auto& g = Graph::instance();
  drain_limbo(g);
  int x0 = 0, x1 = 0;
  const ClassId a = g.register_class(&x0, "grace.a");
  const ClassId b = g.register_class(&x1, "grace.b");
  ASSERT_TRUE(lockdep::class_tracked(a));
  g.ensure_edge(a, b, &x1);
  ASSERT_TRUE(g.has_edge(a, b));

  // Pin like an in-flight DFS/report reader would, then retire both
  // classes. Retirement is immediate LOGICALLY (the ids go stale, the
  // caller never blocks — the old implementation span-waited here on a
  // global dfs_inflight drain)...
  g.pin_epoch();
  g.retire_class(a);
  g.retire_class(b);
  EXPECT_EQ(g.label_of(a), nullptr);
  EXPECT_FALSE(g.has_edge(a, b));
  const auto limbo_now = g.stats().limbo;
  EXPECT_GE(limbo_now, 2u);
  // ...but PHYSICAL recycling must wait out our pin: nothing retired
  // at or after our pinned epoch may be freed mid-traversal.
  EXPECT_EQ(g.try_reclaim(), 0u);
  EXPECT_EQ(g.stats().limbo, limbo_now);
  g.unpin_epoch();
  EXPECT_EQ(g.try_reclaim(), 2u);
  EXPECT_EQ(g.stats().limbo, 0u);

  // The recycled slot re-emerges with a bumped generation, so the old
  // id cannot alias the new tenant.
  const ClassId a2 = g.register_class(&x0, "grace.a2");
  if (lockdep::class_slot(a2) == lockdep::class_slot(a)) {
    EXPECT_NE(lockdep::class_gen(a2), lockdep::class_gen(a));
    EXPECT_NE(a2, a);
  }
  EXPECT_EQ(g.label_of(a), nullptr);
  g.retire_class(a2);
  drain_limbo(g);
}

// ---------------------------------------------------------------------
// Generation-stamped attribution.
// ---------------------------------------------------------------------

TEST(LockdepScale, RecycledSlotDoesNotInheritLockstat) {
  auto& g = Graph::instance();
  auto& ls = observe::LockStat::instance();
  drain_limbo(g);
  int x = 0;
  const ClassId a = g.register_class(&x, "gen.stat");
  ASSERT_TRUE(lockdep::class_tracked(a));
  observe::ClassStats* sa = ls.stats_for(a);
  ASSERT_NE(sa, nullptr);
  sa->misuses.fetch_add(3, std::memory_order_relaxed);
  g.retire_class(a);
  drain_limbo(g);

  // Clamp growth and fill every free slot: the recycled slot of `a`
  // must be among the fresh registrations.
  lockdep::CapacityLimitGuard clamp(g.capacity());
  std::vector<ClassId> fill;
  ClassId a2 = lockdep::kInvalidClass;
  for (;;) {
    const ClassId c = g.register_class(&x, "gen.stat2");
    if (c == lockdep::kUntrackedClass) break;
    fill.push_back(c);
    if (lockdep::class_slot(c) == lockdep::class_slot(a)) a2 = c;
  }
  ASSERT_TRUE(lockdep::class_tracked(a2));
  ASSERT_NE(a2, a);

  // The stale id's stats block is still reachable by its own full id
  // (late recorders holding `a` keep hitting their own block)...
  observe::ClassStats* stale = ls.peek(a);
  ASSERT_NE(stale, nullptr);
  EXPECT_EQ(stale->misuses.load(std::memory_order_relaxed), 3u);
  // ...but the new generation starts from zero, and recording under it
  // displaces the old block.
  observe::ClassStats* sb = ls.stats_for(a2);
  ASSERT_NE(sb, nullptr);
  EXPECT_NE(sb, stale);
  EXPECT_EQ(sb->misuses.load(std::memory_order_relaxed), 0u);
  EXPECT_EQ(ls.peek(a), nullptr);  // displaced — stale id answers nothing
  EXPECT_EQ(ls.peek(a2), sb);

  for (const ClassId c : fill) g.retire_class(c);
  drain_limbo(g);
}

// ---------------------------------------------------------------------
// Shard freelist stealing.
// ---------------------------------------------------------------------

TEST(LockdepScale, AllocatorStealsFromSiblingShards) {
  auto& g = Graph::instance();
  drain_limbo(g);
  // Retirement distributes recycled slots round-robin across ALL
  // shards; a single thread then re-registering drains its home shard
  // and must steal the rest.
  constexpr int kCount = 256;
  int x = 0;
  std::vector<ClassId> ids;
  ids.reserve(kCount);
  for (int i = 0; i < kCount; ++i) {
    ids.push_back(g.register_class(&x, "steal.seed"));
    ASSERT_TRUE(lockdep::class_tracked(ids.back()));
  }
  for (const ClassId c : ids) g.retire_class(c);
  ids.clear();
  drain_limbo(g);

  // Clamp growth so exhaustion of the home shard cannot be papered
  // over by mapping a fresh chunk.
  lockdep::CapacityLimitGuard clamp(g.capacity());
  const auto steals_before = g.stats().shard_steals;
  for (int i = 0; i < kCount; ++i) {
    const ClassId c = g.register_class(&x, "steal.refill");
    ASSERT_TRUE(lockdep::class_tracked(c));
    ids.push_back(c);
  }
  EXPECT_GT(g.stats().shard_steals, steals_before);
  for (const ClassId c : ids) g.retire_class(c);
  drain_limbo(g);
}

// ---------------------------------------------------------------------
// Randomized churn fuzz.
// ---------------------------------------------------------------------

TEST(LockdepScale, RandomChurnReconcilesAgainstRegistry) {
  auto& g = Graph::instance();
  drain_limbo(g);
  const auto live0 = g.stats().classes_live;
  std::mt19937 rng(0x5ca1ab1e);
  std::vector<ClassId> live;
  int x = 0;
  for (int i = 0; i < 20000; ++i) {
    if (live.empty() || rng() % 100 < 55) {
      const ClassId c = g.register_class(&x, "fuzz.live");
      ASSERT_TRUE(lockdep::class_tracked(c));
      live.push_back(c);
    } else {
      const std::size_t k = rng() % live.size();
      g.retire_class(live[k]);
      live[k] = live.back();
      live.pop_back();
    }
  }
  // The graph's live count reconciles exactly with ours, and every
  // live id still resolves to its label (no recycle aliased us).
  EXPECT_EQ(g.stats().classes_live, live0 + live.size());
  for (const ClassId c : live) {
    ASSERT_STREQ(g.label_of(c), "fuzz.live");
  }
  for (const ClassId c : live) g.retire_class(c);
  EXPECT_EQ(g.stats().classes_live, live0);
  // Quiesced: the limbo list drains to zero — no leaked rows.
  drain_limbo(g);
  EXPECT_EQ(g.stats().limbo, 0u);
}
