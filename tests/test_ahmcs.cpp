// Unit tests for the AHMCS adaptive hierarchical lock (§3.8.1) and the
// multi-level HMCS tree constructor.
#include <gtest/gtest.h>

#include <atomic>
#include <vector>

#include "core/ahmcs.hpp"
#include "core/hmcs.hpp"
#include "lock_test_util.hpp"

using namespace resilock;
namespace rt = resilock::test;

namespace {
const platform::Topology& two_domains() {
  static const auto topo = platform::Topology::uniform(2, 2);
  return topo;
}
}  // namespace

// ------------------------- multi-level HMCS ----------------------------

TEST(HmcsDeepTree, ThreeLevelTreeRoundTrips) {
  HmcsLock lock(std::vector<std::uint32_t>{2, 2});  // root -> 2 -> 4 leaves
  EXPECT_EQ(lock.num_leaves(), 4u);
  HmcsLock::Context ctx;
  for (int i = 0; i < 50; ++i) {
    lock.acquire(ctx);
    EXPECT_TRUE(lock.release(ctx));
  }
}

TEST(HmcsDeepTree, MutualExclusionThreeLevels) {
  HmcsLockResilient lock(std::vector<std::uint32_t>{2, 2});
  rt::mutex_stress(lock, 4, 1000);
}

TEST(HmcsDeepTree, MutualExclusionFourLevelsLowThreshold) {
  // Deep tree with threshold=1: every release climbs the full tree.
  HmcsLockResilient lock(std::vector<std::uint32_t>{2, 2, 2}, 1);
  EXPECT_EQ(lock.num_leaves(), 8u);
  rt::mutex_stress(lock, 4, 500);
}

TEST(HmcsDeepTree, DegenerateRootOnlyTree) {
  // Empty fanout list: the root is the only level — plain MCS behavior.
  HmcsLockResilient lock(std::vector<std::uint32_t>{});
  EXPECT_EQ(lock.num_leaves(), 1u);
  rt::mutex_stress(lock, 4, 1000);
}

TEST(HmcsDeepTree, MisuseStillDetectedOnDeepTree) {
  HmcsLockResilient lock(std::vector<std::uint32_t>{2, 2});
  HmcsLockResilient::Context ctx;
  EXPECT_FALSE(lock.release(ctx));
  lock.acquire(ctx);
  EXPECT_TRUE(lock.release(ctx));
  EXPECT_FALSE(lock.release(ctx));
}

// ------------------------------ AHMCS ----------------------------------

template <typename L>
class AhmcsTest : public ::testing::Test {};
using AhmcsTypes = ::testing::Types<AhmcsLock, AhmcsLockResilient>;
TYPED_TEST_SUITE(AhmcsTest, AhmcsTypes);

TYPED_TEST(AhmcsTest, SingleThreadRoundTrips) {
  TypeParam lock(two_domains());
  typename TypeParam::Context ctx;
  // Enough iterations to cross the fast-path threshold: exercises both
  // leaf entry and adaptive root entry, plus the transition.
  for (int i = 0; i < 64; ++i) {
    lock.acquire(ctx);
    EXPECT_TRUE(lock.release(ctx));
  }
}

TYPED_TEST(AhmcsTest, MutualExclusionUnderContention) {
  TypeParam lock(two_domains());
  rt::mutex_stress(lock, 4, 1500);
}

TYPED_TEST(AhmcsTest, MixedAdaptiveAndLeafEntrants) {
  // One context is warmed into the root fast path while fresh contexts
  // keep entering at leaves: the two entry styles must interoperate.
  TypeParam lock(two_domains());
  std::uint64_t counter = 0;
  runtime::ThreadTeam::run(4, [&](std::uint32_t tid) {
    typename TypeParam::Context ctx;
    if (tid == 0) {
      // Warm the streak while uncontended-ish.
      for (int i = 0; i < 16; ++i) {
        lock.acquire(ctx);
        ++counter;
        lock.release(ctx);
      }
    }
    for (int i = 0; i < 1000; ++i) {
      lock.acquire(ctx);
      ++counter;
      ASSERT_TRUE(lock.release(ctx));
    }
  });
  EXPECT_EQ(counter, 4016u);
}

TEST(AhmcsResilient, MisuseDetectedOnBothEntryPaths) {
  AhmcsLockResilient lock(two_domains());
  AhmcsLockResilient::Context ctx;
  EXPECT_FALSE(lock.release(ctx));  // never acquired
  // Leaf-entry episode.
  lock.acquire(ctx);
  EXPECT_TRUE(lock.release(ctx));
  EXPECT_FALSE(lock.release(ctx));
  // Warm into the root fast path, then test detection there too.
  for (int i = 0; i < 16; ++i) {
    lock.acquire(ctx);
    ASSERT_TRUE(lock.release(ctx));
  }
  EXPECT_FALSE(lock.release(ctx));
  lock.acquire(ctx);
  EXPECT_TRUE(lock.release(ctx));
}
