// Unit tests for platform/chrono_to_timespec.hpp: the saturating
// ns <-> timespec conversions and the realtime-deadline-to-monotonic
// re-basing the timed shim entry points depend on.
#include <gtest/gtest.h>

#include <ctime>

#include "platform/chrono_to_timespec.hpp"

using namespace resilock::platform;

TEST(ChronoTimespec, Validity) {
  EXPECT_TRUE(timespec_valid(timespec{0, 0}));
  EXPECT_TRUE(timespec_valid(timespec{5, 999999999}));
  EXPECT_FALSE(timespec_valid(timespec{5, 1000000000}));
  EXPECT_FALSE(timespec_valid(timespec{5, -1}));
}

TEST(ChronoTimespec, RoundTrip) {
  const std::uint64_t cases[] = {0, 1, 999999999, kNsPerSec,
                                 kNsPerSec + 1, 123456789012345ull};
  for (const std::uint64_t ns : cases) {
    const timespec ts = timespec_from_ns(ns);
    EXPECT_TRUE(timespec_valid(ts));
    EXPECT_EQ(ns_from_timespec(ts), ns) << ns;
  }
}

TEST(ChronoTimespec, NegativeSecondsClampToZero) {
  EXPECT_EQ(ns_from_timespec(timespec{-3, 500}), 0u);
}

TEST(ChronoTimespec, SaturatingAdd) {
  EXPECT_EQ(saturating_add_ns(1, 2), 3u);
  EXPECT_EQ(saturating_add_ns(kNsInfinite, 1), kNsInfinite);
  EXPECT_EQ(saturating_add_ns(kNsInfinite - 1, 5), kNsInfinite);
  EXPECT_EQ(saturating_add_ns(5, kNsInfinite), kNsInfinite);
}

TEST(ChronoTimespec, InfiniteRoundsToMaxTimespec) {
  const timespec ts = timespec_from_ns(kNsInfinite);
  EXPECT_TRUE(timespec_valid(ts));
  EXPECT_EQ(ns_from_timespec(ts), kNsInfinite);
}

TEST(ChronoTimespec, ClockNowAdvances) {
  const std::uint64_t a = monotonic_now_ns();
  const std::uint64_t b = monotonic_now_ns();
  EXPECT_GE(b, a);
  EXPECT_GT(a, 0u);
}

TEST(ChronoTimespec, RealtimeDeadlineRebasesToMonotonic) {
  // A realtime deadline 100 ms out lands ~100 ms past monotonic now.
  timespec now{};
  ASSERT_EQ(clock_gettime(CLOCK_REALTIME, &now), 0);
  timespec abs = now;
  abs.tv_nsec += 100000000;
  if (abs.tv_nsec >= 1000000000) {
    abs.tv_sec += 1;
    abs.tv_nsec -= 1000000000;
  }
  const std::uint64_t mono_before = monotonic_now_ns();
  const std::uint64_t deadline = monotonic_deadline_from_realtime(abs);
  EXPECT_GT(deadline, mono_before);
  // Generous bound: within a second of the expected offset.
  EXPECT_LT(deadline, mono_before + kNsPerSec);
}

TEST(ChronoTimespec, PastRealtimeDeadlineIsImmediate) {
  const timespec past{0, 0};  // the epoch: long gone
  const std::uint64_t deadline = monotonic_deadline_from_realtime(past);
  EXPECT_LE(deadline, monotonic_now_ns());
}

TEST(ChronoTimespec, RelativeUntil) {
  timespec rel{};
  // Deadline in the future: a positive relative timeout comes back.
  EXPECT_TRUE(relative_until(1000000, 500000, rel));
  EXPECT_TRUE(timespec_valid(rel));
  EXPECT_EQ(ns_from_timespec(rel), 500000u);
  // Deadline passed (or now): no wait.
  EXPECT_FALSE(relative_until(500, 500, rel));
  EXPECT_FALSE(relative_until(100, 500, rel));
}
