// Clock-variant guinea pig (glibc 2.30+ entry points): a shim-unaware
// pthread program whose lock traffic goes through the clock-based
// calls — pthread_mutex_clocklock, pthread_rwlock_clock{rd,wr}lock,
// pthread_cond_clockwait — plus a cond create/destroy churn loop.
// Compiled at test time by test_preload.cpp and run under
// LD_PRELOAD=libresilock_preload.so.
//
// The mixed-entry counter is the load-bearing check: half the threads
// lock with pthread_mutex_lock, half with a CLOCK_MONOTONIC
// clocklock. If the clock variants were NOT interposed, those threads
// would lock the raw glibc object while the others hold the adopted
// handle — no mutual exclusion — and the printed total would tear.
#include <errno.h>
#include <pthread.h>
#include <stdio.h>
#include <stdlib.h>
#include <string.h>
#include <time.h>

namespace {

constexpr int kThreads = 4;
constexpr long kPerThread = 20000;

pthread_mutex_t g_mu = PTHREAD_MUTEX_INITIALIZER;
long g_counter = 0;

timespec mono_in_ms(long ms) {
  timespec t;
  clock_gettime(CLOCK_MONOTONIC, &t);
  t.tv_sec += ms / 1000;
  t.tv_nsec += (ms % 1000) * 1000000L;
  if (t.tv_nsec >= 1000000000L) {
    t.tv_nsec -= 1000000000L;
    ++t.tv_sec;
  }
  return t;
}

void* plain_worker(void*) {
  for (long i = 0; i < kPerThread; ++i) {
    pthread_mutex_lock(&g_mu);
    ++g_counter;
    pthread_mutex_unlock(&g_mu);
  }
  return nullptr;
}

void* clock_worker(void*) {
  for (long i = 0; i < kPerThread; ++i) {
    const timespec dl = mono_in_ms(10000);
    if (pthread_mutex_clocklock(&g_mu, CLOCK_MONOTONIC, &dl) != 0) {
      fprintf(stderr, "clocklock failed mid-loop\n");
      exit(1);
    }
    ++g_counter;
    pthread_mutex_unlock(&g_mu);
  }
  return nullptr;
}

// Holds the mutex (or rwlock in write mode) long enough for main to
// observe a clock-deadline timeout against it.
struct HoldArgs {
  pthread_mutex_t* mu;
  pthread_rwlock_t* rw;
  long hold_ms;
};

void* holder(void* p) {
  HoldArgs* a = static_cast<HoldArgs*>(p);
  if (a->mu != nullptr) pthread_mutex_lock(a->mu);
  if (a->rw != nullptr) pthread_rwlock_wrlock(a->rw);
  timespec nap = {a->hold_ms / 1000, (a->hold_ms % 1000) * 1000000L};
  nanosleep(&nap, nullptr);
  if (a->rw != nullptr) pthread_rwlock_unlock(a->rw);
  if (a->mu != nullptr) pthread_mutex_unlock(a->mu);
  return nullptr;
}

}  // namespace

int main() {
  pthread_t tids[kThreads];
  for (int i = 0; i < kThreads; ++i) {
    void* (*fn)(void*) = (i % 2 == 0) ? plain_worker : clock_worker;
    if (pthread_create(&tids[i], nullptr, fn, nullptr) != 0) {
      fprintf(stderr, "pthread_create failed\n");
      return 1;
    }
  }
  for (int i = 0; i < kThreads; ++i) pthread_join(tids[i], nullptr);
  printf("clock-total=%ld\n", g_counter);

  // Timeout semantics against a held mutex: the monotonic deadline
  // must expire with ETIMEDOUT, through whatever translation the
  // interposer applies.
  {
    HoldArgs a = {&g_mu, nullptr, 400};
    pthread_t t;
    pthread_create(&t, nullptr, holder, &a);
    timespec settle = {0, 50 * 1000000L};
    nanosleep(&settle, nullptr);  // let the holder take the lock
    const timespec dl = mono_in_ms(100);
    const int rc = pthread_mutex_clocklock(&g_mu, CLOCK_MONOTONIC, &dl);
    printf("clocklock-timeout=%s\n", rc == ETIMEDOUT ? "ok" : "bad");
    pthread_join(t, nullptr);
  }

  // Unsupported clock mirrors glibc: EINVAL, no acquisition.
  {
    const timespec dl = mono_in_ms(100);
    const int rc =
        pthread_mutex_clocklock(&g_mu, CLOCK_PROCESS_CPUTIME_ID, &dl);
    printf("clocklock-einval=%s\n", rc == EINVAL ? "ok" : "bad");
  }

  // rwlock clock variants: rd times out against a live writer, then
  // both rd and wr succeed on the free lock.
  {
    pthread_rwlock_t rw;
    pthread_rwlock_init(&rw, nullptr);
    HoldArgs a = {nullptr, &rw, 400};
    pthread_t t;
    pthread_create(&t, nullptr, holder, &a);
    timespec settle = {0, 50 * 1000000L};
    nanosleep(&settle, nullptr);
    timespec dl = mono_in_ms(100);
    int rc = pthread_rwlock_clockrdlock(&rw, CLOCK_MONOTONIC, &dl);
    printf("clockrdlock-timeout=%s\n", rc == ETIMEDOUT ? "ok" : "bad");
    pthread_join(t, nullptr);
    dl = mono_in_ms(10000);
    rc = pthread_rwlock_clockrdlock(&rw, CLOCK_MONOTONIC, &dl);
    if (rc == 0) rc = pthread_rwlock_unlock(&rw);
    int wrc = pthread_rwlock_clockwrlock(&rw, CLOCK_MONOTONIC, &dl);
    if (wrc == 0) wrc = pthread_rwlock_unlock(&rw);
    printf("clockrwlock-free=%s\n",
           (rc == 0 && wrc == 0) ? "ok" : "bad");
    pthread_rwlock_destroy(&rw);
  }

  // cond_clockwait with nobody signaling: ETIMEDOUT on the monotonic
  // deadline, lock reacquired on the way out (unlock must succeed).
  {
    pthread_cond_t cv;
    pthread_cond_init(&cv, nullptr);
    pthread_mutex_lock(&g_mu);
    const timespec dl = mono_in_ms(100);
    const int rc =
        pthread_cond_clockwait(&cv, &g_mu, CLOCK_MONOTONIC, &dl);
    const int urc = pthread_mutex_unlock(&g_mu);
    printf("clockwait-timeout=%s\n",
           (rc == ETIMEDOUT && urc == 0) ? "ok" : "bad");
    pthread_cond_destroy(&cv);
  }

  // Shadow reclamation churn: heap condvars at fresh addresses, each
  // signaled (forcing a shadow entry) then destroyed. Without a
  // destroy hook the interposer's shadow table grows monotonically;
  // with it this loop recycles a handful of nodes.
  for (int i = 0; i < 512; ++i) {
    pthread_cond_t* cv =
        static_cast<pthread_cond_t*>(malloc(sizeof(pthread_cond_t)));
    pthread_cond_init(cv, nullptr);
    pthread_cond_signal(cv);
    pthread_cond_destroy(cv);
    free(cv);
  }
  printf("cond-churn=done\n");

  printf("clock-child-exit\n");
  return 0;
}
