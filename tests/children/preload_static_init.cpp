// Static-initializer adoption race: four threads hit the very first
// lock of a PTHREAD_MUTEX_INITIALIZER mutex at the same moment (a
// barrier lines them up), so the preload's address-keyed registry sees
// four concurrent adoption attempts for one address. Exactly one may
// construct the resilock handle; the parent test reads the preload's
// stats JSON (RESILOCK_PRELOAD_STATS_FILE) and asserts
// adopted_mutexes == 1 — a double registration would show 2+, a lost
// adoption would deadlock or corrupt the counter invariant printed
// below.
#include <pthread.h>
#include <stdio.h>

namespace {

constexpr int kThreads = 4;
constexpr long kPerThread = 5000;

pthread_mutex_t g_mu = PTHREAD_MUTEX_INITIALIZER;
pthread_barrier_t g_gate;
long g_counter = 0;

void* worker(void*) {
  // Rendezvous so every thread's FIRST touch of g_mu races the others.
  pthread_barrier_wait(&g_gate);
  for (long i = 0; i < kPerThread; ++i) {
    pthread_mutex_lock(&g_mu);
    ++g_counter;
    pthread_mutex_unlock(&g_mu);
  }
  return nullptr;
}

}  // namespace

int main() {
  pthread_barrier_init(&g_gate, nullptr, kThreads);
  pthread_t tids[kThreads];
  for (int i = 0; i < kThreads; ++i) {
    if (pthread_create(&tids[i], nullptr, worker, nullptr) != 0) {
      fprintf(stderr, "pthread_create failed\n");
      return 1;
    }
  }
  for (int i = 0; i < kThreads; ++i) pthread_join(tids[i], nullptr);
  pthread_barrier_destroy(&g_gate);
  printf("static-init-total=%ld\n", g_counter);
  return 0;
}
