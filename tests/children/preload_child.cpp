// The interposition guinea pig: a pthread program with zero resilock
// knowledge, compiled at test time by test_preload.cpp and run under
// LD_PRELOAD=libresilock_preload.so. Everything it does is plain
// POSIX — the point is that the shield, trace pipeline, and lockstat
// signal trigger all light up anyway.
//
// Behavior (asserted by the parent test):
//   1. Four threads push kPerThread increments through a
//      PTHREAD_MUTEX_INITIALIZER-protected counter; the final total
//      printed on stdout proves mutual exclusion held.
//   2. One deliberate double-unlock afterwards: the shield absorbs it
//      (EPERM back, protocol state intact) and the trace JSONL gets a
//      "double-unlock" event.
//   3. raise(SIGUSR2) then a short sleep: the collector's duty cycle
//      renders a lock_stat report that names worker_loop() — this
//      file's own symbol — as the hot call site.
#include <pthread.h>
#include <signal.h>
#include <stdio.h>
#include <stdlib.h>
#include <unistd.h>

namespace {

constexpr int kThreads = 4;
constexpr long kPerThread = 20000;

pthread_mutex_t g_mu = PTHREAD_MUTEX_INITIALIZER;
long g_counter = 0;

}  // namespace

// External C linkage and out-of-line so -rdynamic exports the symbol:
// lockstat resolves call sites with dladdr, which only sees the
// dynamic symbol table. The parent test greps the SIGUSR2 report for
// "worker_loop".
extern "C" __attribute__((noinline)) void worker_loop() {
  for (long i = 0; i < kPerThread; ++i) {
    pthread_mutex_lock(&g_mu);
    ++g_counter;
    pthread_mutex_unlock(&g_mu);
  }
}

namespace {

void* worker(void*) {
  worker_loop();
  return nullptr;
}

}  // namespace

int main() {
  pthread_t tids[kThreads];
  for (int i = 0; i < kThreads; ++i) {
    if (pthread_create(&tids[i], nullptr, worker, nullptr) != 0) {
      fprintf(stderr, "pthread_create failed\n");
      return 1;
    }
  }
  for (int i = 0; i < kThreads; ++i) pthread_join(tids[i], nullptr);
  printf("total=%ld\n", g_counter);

  // The §4 bug, injected once: a second unlock of a lock this thread
  // no longer holds. Bare glibc would corrupt (normal mutexes) or
  // EPERM (errorcheck); the shield always absorbs and reports EPERM.
  pthread_mutex_lock(&g_mu);
  pthread_mutex_unlock(&g_mu);
  int rc = pthread_mutex_unlock(&g_mu);
  printf("double-unlock-rc=%d\n", rc);

  // Live observability: ask for a lock_stat dump the way an operator
  // would, then give the collector a couple of duty cycles to render.
  // Only when the run enables lockstat — without it no handler is
  // installed and the default SIGUSR2 disposition would kill us.
  if (getenv("RESILOCK_LOCKSTAT") != nullptr) {
    raise(SIGUSR2);
    usleep(400000);
  }
  printf("child-exit\n");
  return 0;
}
