// Property-based sweep over every registered lock algorithm:
//   P1 (safety)    — no two threads simultaneously in the CS, no lost
//                    counter updates;
//   P2 (progress)  — the run completes (no deadlock/livelock);
//   P3 (balance)   — every legitimate release() returns true;
//   P4 (detection) — resilient flavors refuse an injected unbalanced
//                    release while idle threads hammer the lock.
// Parameterized over (lock name, flavor, threads, cs length) via
// INSTANTIATE_TEST_SUITE_P.
#include <gtest/gtest.h>

#include <atomic>
#include <string>
#include <tuple>

#include "core/lock_registry.hpp"
#include "lock_test_util.hpp"
#include "runtime/barrier.hpp"
#include "runtime/thread_team.hpp"
#include "runtime/timer.hpp"
#include "verify/checkers.hpp"

using namespace resilock;
namespace rv = resilock::verify;

using Param = std::tuple<std::string, Resilience, std::uint32_t,
                         std::uint32_t>;  // name, flavor, threads, cs work

class MutexProperty : public ::testing::TestWithParam<Param> {};

TEST_P(MutexProperty, SafetyProgressBalance) {
  const auto& [name, flavor, threads, cs_work] = GetParam();
  auto lock = make_lock(name, flavor);
  rv::MutexChecker chk;
  std::uint64_t counter = 0;
  const std::uint64_t iters = cs_work == 0 ? 1200 : 500;
  std::atomic<std::uint64_t> release_failures{0};

  runtime::ThreadTeam::run(threads, [&](std::uint32_t) {
    std::uint64_t sink = 0;
    for (std::uint64_t i = 0; i < iters; ++i) {
      lock->acquire();
      chk.enter();
      counter += 1;
      if (cs_work) sink ^= runtime::busy_work(cs_work, sink + i);
      chk.exit();
      if (!lock->release()) release_failures.fetch_add(1);
    }
    (void)sink;
  });

  EXPECT_EQ(chk.max_simultaneous(), 1) << "mutual exclusion violated";
  EXPECT_EQ(counter, iters * threads) << "lost updates";
  EXPECT_EQ(release_failures.load(), 0u)
      << "legitimate release flagged as unbalanced";
}

TEST_P(MutexProperty, InjectedMisuseHandled) {
  const auto& [name, flavor, threads, cs_work] = GetParam();
  if (flavor == kOriginal) {
    GTEST_SKIP() << "misuse injection on original flavors is covered by "
                    "the scripted misuse-matrix scenarios";
  }
  auto lock = make_lock(name, flavor);
  std::atomic<bool> stop{false};
  std::atomic<std::uint64_t> false_negatives{0};

  runtime::ThreadTeam::run(threads + 1, [&](std::uint32_t tid) {
    if (tid == threads) {
      // The misbehaving thread: unbalanced releases in a loop.
      for (int i = 0; i < 50; ++i) {
        if (lock->release() && name != "HCLH") {
          false_negatives.fetch_add(1);
        }
        std::this_thread::yield();
      }
      stop.store(true);
    } else {
      while (!stop.load()) {
        lock->acquire();
        runtime::busy_work(cs_work);
        ASSERT_TRUE(lock->release());
      }
    }
  });
  EXPECT_EQ(false_negatives.load(), 0u)
      << "resilient flavor accepted an unbalanced unlock";
}

namespace {

std::vector<Param> make_params() {
  std::vector<Param> params;
  for (const auto& name : lock_names()) {
    for (auto flavor : {kOriginal, kResilient}) {
      for (std::uint32_t threads : {2u, 4u}) {
        for (std::uint32_t cs : {0u, 32u}) {
          params.emplace_back(name, flavor, threads, cs);
        }
      }
    }
  }
  return params;
}

std::string param_name(const ::testing::TestParamInfo<Param>& info) {
  const auto& [name, flavor, threads, cs] = info.param;
  return test::gtest_safe_name(name + std::string("_") + to_string(flavor) +
                               "_t" + std::to_string(threads) + "_cs" +
                               std::to_string(cs));
}

}  // namespace

INSTANTIATE_TEST_SUITE_P(AllLocks, MutexProperty,
                         ::testing::ValuesIn(make_params()), param_name);
