// Unit tests for the array-based queue locks: Anderson's ABQL (§3.3.1)
// and Graunke–Thakkar (§3.3.2).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "core/abql.hpp"
#include "core/graunke_thakkar.hpp"
#include "lock_test_util.hpp"
#include "verify/access.hpp"
#include "verify/checkers.hpp"

using namespace resilock;
namespace rt = resilock::test;
namespace rv = resilock::verify;

// ----------------------------- ABQL -----------------------------------

template <typename L>
class AbqlTest : public ::testing::Test {};
using AbqlTypes = ::testing::Types<AndersonLock, AndersonLockResilient>;
TYPED_TEST_SUITE(AbqlTest, AbqlTypes);

TYPED_TEST(AbqlTest, SingleThreadRoundTrips) {
  TypeParam lock(8);
  typename TypeParam::Place p;
  for (int i = 0; i < 20; ++i) {  // cycles through the slot array twice
    lock.acquire(p);
    EXPECT_TRUE(lock.release(p));
  }
}

TYPED_TEST(AbqlTest, MutualExclusionUnderContention) {
  TypeParam lock(16);
  rt::mutex_stress(lock, 4, 2000);
}

TYPED_TEST(AbqlTest, CapacityRoundsUpToPowerOfTwo) {
  TypeParam lock(5);
  EXPECT_EQ(lock.capacity(), 8u);
  TypeParam lock2(16);
  EXPECT_EQ(lock2.capacity(), 16u);
}

TYPED_TEST(AbqlTest, TryAcquireSemantics) {
  TypeParam lock(8);
  typename TypeParam::Place p1, p2;
  EXPECT_TRUE(lock.try_acquire(p1));
  EXPECT_FALSE(lock.try_acquire(p2));  // held
  EXPECT_TRUE(lock.release(p1));
  EXPECT_TRUE(lock.try_acquire(p2));
  EXPECT_TRUE(lock.release(p2));
}

TYPED_TEST(AbqlTest, TryAcquireFailsWhileWaiterQueued) {
  TypeParam lock(8);
  typename TypeParam::Place holder;
  lock.acquire(holder);
  std::atomic<bool> waiter_done{false};
  std::thread waiter([&] {
    typename TypeParam::Place p;
    lock.acquire(p);
    lock.release(p);
    waiter_done.store(true);
  });
  // Whatever the waiter's progress, trylock must not jump the queue.
  typename TypeParam::Place p;
  EXPECT_FALSE(lock.try_acquire(p));
  lock.release(holder);
  while (!waiter_done.load()) std::this_thread::yield();
  waiter.join();
}

TEST(AbqlResilient, FreshPlaceRefused) {
  AndersonLockResilient lock(8);
  AndersonLockResilient::Place rogue;
  EXPECT_FALSE(lock.release(rogue));
}

TEST(AbqlResilient, PlaceConsumedByRelease) {
  AndersonLockResilient lock(8);
  AndersonLockResilient::Place p;
  lock.acquire(p);
  EXPECT_TRUE(lock.release(p));
  EXPECT_FALSE(lock.release(p));  // reset to INVALID by the first release
}

TEST(AbqlOriginal, RogueReleaseAdmitsWaiter) {
  // The §3.3.1 violation, deterministically: T1 holds slot 0; a rogue
  // release with a default (0) place hands slot 1 its token.
  AndersonLock lock(8);
  rv::MutexChecker chk;
  AndersonLock::Place p1;
  std::atomic<bool> t1_out{false};
  rv::Probe t1([&] {
    lock.acquire(p1);
    chk.enter();
    rv::wait_for([&] { return t1_out.load(); }, rv::milliseconds{3000});
    chk.exit();
    lock.release(p1);
  });
  rv::wait_for([&] { return chk.current() == 1; });
  AndersonLock::Place rogue;
  EXPECT_TRUE(lock.release(rogue));  // misuse goes unnoticed
  rv::Probe t2([&] {
    AndersonLock::Place p2;
    lock.acquire(p2);
    chk.enter();
    chk.exit();
    lock.release(p2);
  });
  EXPECT_TRUE(rv::wait_for([&] { return chk.max_simultaneous() >= 2; }));
  t1_out.store(true);
  t1.join();
  t2.join();
}

// ------------------------- Graunke–Thakkar -----------------------------

template <typename L>
class GtTest : public ::testing::Test {};
using GtTypes =
    ::testing::Types<GraunkeThakkarLock, GraunkeThakkarLockResilient>;
TYPED_TEST_SUITE(GtTest, GtTypes);

TYPED_TEST(GtTest, SingleThreadRoundTrips) {
  TypeParam lock(16);
  for (int i = 0; i < 10; ++i) {
    lock.acquire();
    EXPECT_TRUE(lock.release());
  }
}

TYPED_TEST(GtTest, MutualExclusionUnderContention) {
  TypeParam lock;
  rt::mutex_stress(lock, 4, 2000);
}

TYPED_TEST(GtTest, HandoffBetweenTwoThreads) {
  TypeParam lock(16);
  std::uint64_t counter = 0;
  runtime::ThreadTeam::run(2, [&](std::uint32_t) {
    for (int i = 0; i < 1000; ++i) {
      lock.acquire();
      ++counter;
      lock.release();
    }
  });
  EXPECT_EQ(counter, 2000u);
}

TEST(GtResilient, MisuseDetectedWithoutToggling) {
  GraunkeThakkarLockResilient lock(16);
  EXPECT_FALSE(lock.release());  // never held
  lock.acquire();
  EXPECT_TRUE(lock.release());
  EXPECT_FALSE(lock.release());  // double release refused
  // Lock still functional for a successor.
  std::thread t([&] {
    lock.acquire();
    EXPECT_TRUE(lock.release());
  });
  t.join();
}

TEST(GtOriginal, DoubleToggleStrandsSuccessor) {
  // §3.3.2 starvation: the double toggle restores the slot value a
  // successor snapshotted in the tail word.
  GraunkeThakkarLock lock(64);
  const auto pid = platform::self_pid();
  lock.acquire();
  EXPECT_TRUE(lock.release());
  EXPECT_TRUE(lock.release());  // misuse, undetected
  rv::Probe t2([&] {
    lock.acquire();
    lock.release();
  });
  EXPECT_FALSE(t2.finished_within());  // stranded
  VerifyAccess::gt_toggle_slot(lock, pid);  // rescue
  t2.join();
}
