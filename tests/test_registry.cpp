// Unit tests for the lock registry and the type-erased AnyLock layer.
#include <gtest/gtest.h>

#include <set>
#include <stdexcept>

#include "core/lock_registry.hpp"
#include "runtime/thread_team.hpp"

using namespace resilock;

TEST(Registry, AllNamesConstructBothFlavors) {
  for (const auto& name : lock_names()) {
    for (auto r : {kOriginal, kResilient}) {
      auto lock = make_lock(name, r);
      ASSERT_NE(lock, nullptr) << name;
      EXPECT_EQ(lock->name(), name);
      EXPECT_EQ(lock->resilience(), r);
      lock->acquire();
      EXPECT_TRUE(lock->release()) << name;
    }
  }
}

TEST(Registry, UnknownNameThrows) {
  EXPECT_THROW(make_lock("NoSuchLock", kOriginal), std::out_of_range);
  EXPECT_FALSE(is_lock_name("NoSuchLock"));
  EXPECT_TRUE(is_lock_name("MCS"));
}

TEST(Registry, Table2NamesAreRegisteredInTableOrder) {
  const auto& t2 = table2_lock_names();
  ASSERT_EQ(t2.size(), 6u);
  EXPECT_EQ(t2[0], "TAS");
  EXPECT_EQ(t2[1], "Ticket");
  EXPECT_EQ(t2[2], "ABQL");
  EXPECT_EQ(t2[3], "MCS");
  EXPECT_EQ(t2[4], "CLH");
  EXPECT_EQ(t2[5], "HMCS");
  for (const auto& n : t2) EXPECT_TRUE(is_lock_name(n));
}

TEST(Registry, NamesAreUniqueAndNonEmpty) {
  std::set<std::string> seen;
  for (const auto& n : lock_names()) {
    EXPECT_FALSE(n.empty());
    EXPECT_TRUE(seen.insert(n).second) << "duplicate: " << n;
  }
  EXPECT_GE(seen.size(), 15u);
}

TEST(AnyLock, ResilientFlavorsDetectMisuseThroughTypeErasure) {
  for (const auto& name : lock_names()) {
    if (name == "HCLH") continue;  // immune: nothing to detect (§3.8.2)
    auto lock = make_lock(name, kResilient);
    lock->acquire();
    ASSERT_TRUE(lock->release()) << name;
    EXPECT_FALSE(lock->release()) << name << " failed to detect misuse";
  }
}

TEST(AnyLock, TrylockFallsBackToAcquireWhereUnsupported) {
  for (const auto& name : lock_names()) {
    auto lock = make_lock(name, kResilient);
    EXPECT_TRUE(lock->try_acquire()) << name;  // free lock: must succeed
    EXPECT_TRUE(lock->release()) << name;
  }
}

TEST(AnyLock, NativeTrylockRefusesWhenHeld) {
  for (const auto& name : lock_names()) {
    auto lock = make_lock(name, kOriginal);
    if (!lock->supports_trylock()) continue;
    lock->acquire();
    std::atomic<bool> got{false};
    runtime::ThreadTeam::run(2, [&](std::uint32_t tid) {
      if (tid == 1) got.store(lock->try_acquire());
    });
    EXPECT_FALSE(got.load()) << name;
    EXPECT_TRUE(lock->release()) << name;
  }
}

TEST(AnyLock, MutualExclusionThroughTypeErasure) {
  for (const auto& name : lock_names()) {
    auto lock = make_lock(name, kResilient);
    std::uint64_t counter = 0;
    runtime::ThreadTeam::run(4, [&](std::uint32_t) {
      for (int i = 0; i < 300; ++i) {
        lock->acquire();
        ++counter;
        ASSERT_TRUE(lock->release());
      }
    });
    EXPECT_EQ(counter, 1200u) << name;
  }
}

TEST(AnyLock, PerThreadContextsAreIndependent) {
  // Context locks must give each thread its own context slot.
  auto lock = make_lock("MCS", kResilient);
  runtime::ThreadTeam::run(4, [&](std::uint32_t) {
    for (int i = 0; i < 200; ++i) {
      lock->acquire();
      ASSERT_TRUE(lock->release());
    }
  });
  SUCCEED();
}

TEST(AnyLock, CLHSupportsNoTrylock) {
  auto lock = make_lock("CLH", kOriginal);
  EXPECT_FALSE(lock->supports_trylock());  // §6: CLH has no trylock
  auto tas = make_lock("TAS", kOriginal);
  EXPECT_TRUE(tas->supports_trylock());
}
