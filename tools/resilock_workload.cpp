// Driven app-shaped workloads for the LD_PRELOAD harness.
//
// This binary is the "unmodified application" of the paper's
// evaluation: it includes no resilock header and links only libpthread.
// Everything resilock does to it happens from the outside, via
// LD_PRELOAD=libresilock_preload.so (resilock_drive orchestrates that).
//
// Three workloads, grown from the examples/ programs into
// parameterized, invariant-checked drivers:
//
//   ledger    examples/bank_ledger shape: N account mutexes (plus one
//             PTHREAD_MUTEX_INITIALIZER stats mutex — the lazy-adoption
//             path), random pairwise transfers in address order.
//             Invariant: total balance conserved.
//   pipeline  examples/pipeline shape: 3 stages over bounded queues
//             built on pthread_mutex_t + pthread_cond_t — exercises the
//             preload's condition-variable shadow path.
//             Invariant: every produced item consumed, checksum intact.
//   rwcache   examples/rwcache shape: read-mostly table under a
//             pthread_rwlock_t. Invariant: paired fields never observed
//             torn.
//
// --misuse-rate injects the paper's §2 bug: an unlock of a lock the
// thread does not hold, at the given per-op probability. Bare glibc
// silently breaks mutual exclusion (the invariant check reports
// "corrupt"); under the preload the shield absorbs each one (EPERM)
// and the run stays "ok" — that head-to-head is the point.
//
// Output: one JSON line on stdout:
//   {"workload":"ledger","threads":8,"ops":123,"duration_ms":3000,
//    "throughput_ops_s":41.0,"check":"ok","misuses_injected":7}

#include <pthread.h>
#include <sched.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <string>
#include <vector>

namespace {

// ---------------------------------------------------------------------
// Config + shared state
// ---------------------------------------------------------------------

struct Config {
  std::string workload = "ledger";
  int threads = 4;
  long duration_ms = 2000;
  double misuse_rate = 0.0;
  std::vector<int> cpus;  // pin thread i to cpus[i % n]; empty = no pin
};

std::atomic<bool> g_stop{false};
std::atomic<std::uint64_t> g_misuses{0};

std::uint64_t now_ms() {
  timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  return static_cast<std::uint64_t>(ts.tv_sec) * 1000 +
         static_cast<std::uint64_t>(ts.tv_nsec) / 1000000;
}

struct Rng {  // xorshift64*, per thread
  std::uint64_t s;
  explicit Rng(std::uint64_t seed) : s(seed * 2685821657736338717ull + 1) {}
  std::uint64_t next() {
    s ^= s >> 12;
    s ^= s << 25;
    s ^= s >> 27;
    return s * 2685821657736338717ull;
  }
  double uniform() { return (next() >> 11) * (1.0 / 9007199254740992.0); }
};

void maybe_pin(const Config& cfg, int tid) {
  if (cfg.cpus.empty()) return;
  const int cpu = cfg.cpus[static_cast<std::size_t>(tid) % cfg.cpus.size()];
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(cpu, &set);
  pthread_setaffinity_np(pthread_self(), sizeof(set), &set);
}

// ---------------------------------------------------------------------
// ledger
// ---------------------------------------------------------------------

constexpr int kAccounts = 64;
constexpr long kInitialBalance = 1000;
// Per-transaction compute between lock episodes (~0.5us): the ratio a
// lock-bound microbench would hide is exactly what the head-to-head
// wants to show for an app-shaped profile.
constexpr int kThinkSteps = 512;

struct Ledger {
  pthread_mutex_t lock[kAccounts];
  long balance[kAccounts];
  // CS occupancy counter per account, only ever touched under lock[i]
  // — so any observation != 1 inside the CS means mutual exclusion
  // broke (a stray unlock let a second thread in). Much more sensitive
  // than waiting for a lost balance update to surface.
  int in_cs[kAccounts];
  std::atomic<bool> invaded{false};
  std::uint64_t ops = 0;
};
Ledger g_ledger;
// The lazy-adoption path: never pthread_mutex_init'ed, first touched
// by a lock call from a worker thread.
pthread_mutex_t g_ledger_stats_mu = PTHREAD_MUTEX_INITIALIZER;

struct WorkerArgs {
  const Config* cfg;
  int tid;
  std::uint64_t ops = 0;
};

void* ledger_worker(void* p) {
  auto* a = static_cast<WorkerArgs*>(p);
  maybe_pin(*a->cfg, a->tid);
  Rng rng(0x9E3779B9u + static_cast<std::uint64_t>(a->tid));
  std::uint64_t local_ops = 0;
  while (!g_stop.load(std::memory_order_relaxed)) {
    // Account 0 is deliberately hot (a "house account" every fourth
    // transaction touches): contention concentrates there, which is
    // also where misuse injection aims — a freed-while-held hot lock
    // is how a stray unlock becomes an observable invasion.
    const int i = rng.uniform() < 0.25
                      ? 0
                      : static_cast<int>(rng.next() % kAccounts);
    int j = static_cast<int>(rng.next() % kAccounts);
    if (j == i) j = (j + 1) % kAccounts;
    pthread_mutex_t* first = &g_ledger.lock[i < j ? i : j];
    pthread_mutex_t* second = &g_ledger.lock[i < j ? j : i];
    pthread_mutex_lock(first);
    pthread_mutex_lock(second);
    if (++g_ledger.in_cs[i] != 1) {
      g_ledger.invaded.store(true, std::memory_order_relaxed);
    }
    const long amount = static_cast<long>(rng.next() % 100);
    g_ledger.balance[i] -= amount;
    for (volatile int spin = 0; spin < 32; spin = spin + 1) {
    }  // widen the CS so an invader is actually observed
    g_ledger.balance[j] += amount;
    --g_ledger.in_cs[i];
    pthread_mutex_unlock(second);
    pthread_mutex_unlock(first);
    // App-shaped think time between transactions (outside the CS):
    // real ledgers compute; a pure lock/unlock spin would measure
    // nothing but interposition dispatch.
    for (int k = 0; k < kThinkSteps; ++k) rng.next();
    if (a->cfg->misuse_rate > 0 && rng.uniform() < a->cfg->misuse_rate) {
      // The §2 bug: unlock of a lock this thread does NOT hold, aimed
      // at the hot account. Bare glibc frees it under the current
      // holder and the next acquirer invades the CS (in_cs detects).
      pthread_mutex_unlock(&g_ledger.lock[0]);
      g_misuses.fetch_add(1, std::memory_order_relaxed);
    }
    if ((++local_ops & 1023) == 0) {
      pthread_mutex_lock(&g_ledger_stats_mu);
      g_ledger.ops += 1024;
      pthread_mutex_unlock(&g_ledger_stats_mu);
    }
  }
  a->ops = local_ops;
  return nullptr;
}

bool ledger_check() {
  long total = 0;
  for (long b : g_ledger.balance) total += b;
  return total == static_cast<long>(kAccounts) * kInitialBalance &&
         !g_ledger.invaded.load();
}

// ---------------------------------------------------------------------
// pipeline: produce → transform → consume over two bounded queues
// (mutex + two condvars each), the dedup/ferret shape LiTL calls out.
// ---------------------------------------------------------------------

struct BoundedQueue {
  static constexpr int kCap = 64;
  pthread_mutex_t mu = PTHREAD_MUTEX_INITIALIZER;
  pthread_cond_t not_empty = PTHREAD_COND_INITIALIZER;
  pthread_cond_t not_full = PTHREAD_COND_INITIALIZER;
  std::uint64_t items[kCap];
  int head = 0, count = 0;
  bool closed = false;

  // False when the queue closed while we were blocked (nothing pushed)
  // — without the closed check a producer could land an item after the
  // last popper exited, leaking it.
  bool push(std::uint64_t v) {
    pthread_mutex_lock(&mu);
    while (count == kCap && !closed) pthread_cond_wait(&not_full, &mu);
    if (closed) {
      pthread_mutex_unlock(&mu);
      return false;
    }
    items[(head + count) % kCap] = v;
    ++count;
    pthread_cond_signal(&not_empty);
    pthread_mutex_unlock(&mu);
    return true;
  }

  // False when the queue is closed and drained.
  bool pop(std::uint64_t* out) {
    pthread_mutex_lock(&mu);
    while (count == 0 && !closed) pthread_cond_wait(&not_empty, &mu);
    if (count == 0) {
      pthread_mutex_unlock(&mu);
      return false;
    }
    *out = items[head];
    head = (head + 1) % kCap;
    --count;
    pthread_cond_signal(&not_full);
    pthread_mutex_unlock(&mu);
    return true;
  }

  void close() {
    pthread_mutex_lock(&mu);
    closed = true;
    pthread_cond_broadcast(&not_empty);
    pthread_cond_broadcast(&not_full);
    pthread_mutex_unlock(&mu);
  }
};

BoundedQueue g_q1, g_q2;
std::atomic<std::uint64_t> g_produced{0}, g_produced_sum{0};
std::atomic<std::uint64_t> g_consumed{0}, g_consumed_sum{0};
std::atomic<int> g_transformers_left{0};

void* pipeline_producer(void* p) {
  auto* a = static_cast<WorkerArgs*>(p);
  maybe_pin(*a->cfg, a->tid);
  Rng rng(0xA5A5A5A5u + static_cast<std::uint64_t>(a->tid));
  std::uint64_t n = 0;
  while (!g_stop.load(std::memory_order_relaxed)) {
    const std::uint64_t v = rng.next() & 0xFFFF;
    if (!g_q1.push(v)) break;
    g_produced_sum.fetch_add(v, std::memory_order_relaxed);
    g_produced.fetch_add(1, std::memory_order_relaxed);
    ++n;
  }
  a->ops = n;
  return nullptr;
}

void* pipeline_transformer(void* p) {
  auto* a = static_cast<WorkerArgs*>(p);
  maybe_pin(*a->cfg, a->tid);
  Rng rng(0x5A5A5A5Au + static_cast<std::uint64_t>(a->tid));
  std::uint64_t v = 0, n = 0;
  while (g_q1.pop(&v)) {
    if (a->cfg->misuse_rate > 0 && rng.uniform() < a->cfg->misuse_rate) {
      pthread_mutex_unlock(&g_q2.mu);  // not held: the §2 bug
      g_misuses.fetch_add(1, std::memory_order_relaxed);
    }
    g_q2.push(v);  // checksum-preserving transform (identity)
    ++n;
  }
  // Only the LAST transformer may close q2, or consumers drain early
  // while peers still push.
  if (g_transformers_left.fetch_sub(1, std::memory_order_acq_rel) == 1) {
    g_q2.close();
  }
  a->ops = n;
  return nullptr;
}

void* pipeline_consumer(void* p) {
  auto* a = static_cast<WorkerArgs*>(p);
  maybe_pin(*a->cfg, a->tid);
  std::uint64_t v = 0, n = 0;
  while (g_q2.pop(&v)) {
    g_consumed_sum.fetch_add(v, std::memory_order_relaxed);
    g_consumed.fetch_add(1, std::memory_order_relaxed);
    ++n;
  }
  a->ops = n;
  return nullptr;
}

// ---------------------------------------------------------------------
// rwcache
// ---------------------------------------------------------------------

constexpr int kEntries = 256;

struct RwCache {
  pthread_rwlock_t lock;
  // Invariant under the lock: a == b for every entry. A reader that
  // observes a != b has raced a writer — mutual exclusion broke.
  std::uint64_t a[kEntries];
  std::uint64_t b[kEntries];
  std::atomic<bool> torn{false};
};
RwCache g_cache;

void* rwcache_worker(void* p) {
  auto* a = static_cast<WorkerArgs*>(p);
  maybe_pin(*a->cfg, a->tid);
  Rng rng(0xC0FFEEull + static_cast<std::uint64_t>(a->tid));
  std::uint64_t n = 0;
  while (!g_stop.load(std::memory_order_relaxed)) {
    const int e = static_cast<int>(rng.next() % kEntries);
    if (rng.uniform() < 0.9) {  // read-mostly
      pthread_rwlock_rdlock(&g_cache.lock);
      const std::uint64_t va = g_cache.a[e];
      const std::uint64_t vb = g_cache.b[e];
      pthread_rwlock_unlock(&g_cache.lock);
      if (va != vb) g_cache.torn.store(true, std::memory_order_relaxed);
    } else {
      pthread_rwlock_wrlock(&g_cache.lock);
      // Widen the write window so a reader invading the CS (after a
      // misuse empties the read indicator) actually observes the tear.
      g_cache.a[e] += 1;
      for (volatile int spin = 0; spin < 64; spin = spin + 1) {
      }
      g_cache.b[e] += 1;
      pthread_rwlock_unlock(&g_cache.lock);
    }
    if (a->cfg->misuse_rate > 0 && rng.uniform() < a->cfg->misuse_rate) {
      pthread_rwlock_unlock(&g_cache.lock);  // not held: the §4 bug
      g_misuses.fetch_add(1, std::memory_order_relaxed);
    }
    for (int k = 0; k < kThinkSteps; ++k) rng.next();  // think, see ledger
    ++n;
  }
  a->ops = n;
  return nullptr;
}

// ---------------------------------------------------------------------
// Harness
// ---------------------------------------------------------------------

std::vector<int> parse_cpu_list(const char* s) {
  std::vector<int> cpus;
  for (const char* p = s; *p != '\0';) {
    char* end = nullptr;
    const long v = std::strtol(p, &end, 10);
    if (end == p) break;
    cpus.push_back(static_cast<int>(v));
    p = (*end == ',') ? end + 1 : end;
  }
  return cpus;
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s [--workload ledger|pipeline|rwcache] [--threads N]\n"
      "          [--duration-ms MS] [--misuse-rate P] [--cpus 0,2,4]\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  Config cfg;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--workload") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      cfg.workload = v;
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      cfg.threads = std::atoi(v);
    } else if (arg == "--duration-ms") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      cfg.duration_ms = std::atol(v);
    } else if (arg == "--misuse-rate") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      cfg.misuse_rate = std::atof(v);
    } else if (arg == "--cpus") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      cfg.cpus = parse_cpu_list(v);
    } else {
      return usage(argv[0]);
    }
  }
  if (cfg.threads < 1) cfg.threads = 1;

  // Watchdog: a corrupted lock can hang a bare+misuse run forever
  // (glibc rwlock misuse reliably wedges rdlock); SIGALRM's default
  // action keeps the drive finite — the parent records check="died".
  alarm(static_cast<unsigned>(cfg.duration_ms / 1000 + 15));

  for (int i = 0; i < kAccounts; ++i) {
    pthread_mutex_init(&g_ledger.lock[i], nullptr);
    g_ledger.balance[i] = kInitialBalance;
  }
  pthread_rwlock_init(&g_cache.lock, nullptr);
  for (int i = 0; i < kEntries; ++i) g_cache.a[i] = g_cache.b[i] = 0;

  std::vector<pthread_t> threads(static_cast<std::size_t>(cfg.threads));
  std::vector<WorkerArgs> args(static_cast<std::size_t>(cfg.threads));
  for (int i = 0; i < cfg.threads; ++i) args[i] = {&cfg, i, 0};

  const std::uint64_t t0 = now_ms();
  if (cfg.workload == "ledger") {
    for (int i = 0; i < cfg.threads; ++i) {
      pthread_create(&threads[i], nullptr, ledger_worker, &args[i]);
    }
  } else if (cfg.workload == "pipeline") {
    if (cfg.threads < 3) {
      std::fprintf(stderr, "pipeline needs >= 3 threads\n");
      return 2;
    }
    // Stage split: 1/3 producers, 1/3 transformers, rest consumers
    // (at least one of each).
    const int p = cfg.threads / 3;
    const int t = cfg.threads / 3;
    g_transformers_left.store(t, std::memory_order_relaxed);
    for (int i = 0; i < cfg.threads; ++i) {
      void* (*fn)(void*) = (i < p)       ? pipeline_producer
                           : (i < p + t) ? pipeline_transformer
                                         : pipeline_consumer;
      pthread_create(&threads[i], nullptr, fn, &args[i]);
    }
  } else if (cfg.workload == "rwcache") {
    for (int i = 0; i < cfg.threads; ++i) {
      pthread_create(&threads[i], nullptr, rwcache_worker, &args[i]);
    }
  } else {
    return usage(argv[0]);
  }

  timespec sleep_ts = {cfg.duration_ms / 1000,
                       (cfg.duration_ms % 1000) * 1000000};
  while (nanosleep(&sleep_ts, &sleep_ts) == -1 && errno == EINTR) {
  }
  g_stop.store(true, std::memory_order_relaxed);
  if (cfg.workload == "pipeline") g_q1.close();

  std::uint64_t ops = 0;
  for (int i = 0; i < cfg.threads; ++i) {
    pthread_join(threads[i], nullptr);
    ops += args[i].ops;
  }
  const std::uint64_t elapsed = now_ms() - t0;

  bool ok = true;
  if (cfg.workload == "ledger") {
    ok = ledger_check();
  } else if (cfg.workload == "pipeline") {
    ok = g_produced.load() == g_consumed.load() &&
         g_produced_sum.load() == g_consumed_sum.load();
    ops = g_consumed.load();
  } else if (cfg.workload == "rwcache") {
    ok = !g_cache.torn.load();
  }

  const double secs =
      elapsed > 0 ? static_cast<double>(elapsed) / 1000.0 : 1.0;
  std::printf(
      "{\"workload\":\"%s\",\"threads\":%d,\"ops\":%" PRIu64
      ",\"duration_ms\":%" PRIu64
      ",\"throughput_ops_s\":%.1f,\"check\":\"%s\","
      "\"misuses_injected\":%" PRIu64 "}\n",
      cfg.workload.c_str(), cfg.threads, ops, elapsed,
      static_cast<double>(ops) / secs, ok ? "ok" : "corrupt",
      g_misuses.load());
  return 0;
}
