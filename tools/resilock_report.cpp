// resilock_report: offline lock-contention analyzer.
//
// Ingests the traces the telemetry plane already emits — the JSONL
// event stream (RESILOCK_TRACE_FILE) or the perfetto/chrome-trace
// document (RESILOCK_TRACE_FORMAT=perfetto) — and reconstructs the
// same /proc/lock_stat-shaped contention table a live process renders
// through the lockstat report (observe::write_report), plus a
// per-thread wait timeline. Post-mortem traces and live processes
// answer the same questions in the same format:
//
//   resilock_report trace.jsonl                # contention table
//   resilock_report trace.json --top 8         # more call sites
//   resilock_report trace.jsonl --timeline     # every wait span
//   resilock_report trace.jsonl --json out.json  # machine-readable
//
// Reconstruction semantics: hold spans (hold-begin .. hold-end per
// (thread, lock)) rebuild the hold histogram and acquisition count;
// wait spans rebuild the wait histogram and contention count (the
// shield only brackets CONTENDED acquires, matching lockstat's
// on_contended_wait). Call sites come from the span-begin `site`
// field (captured when RESILOCK_LOCKSTAT was on in the traced
// process) and render as raw hex — symbolization is meaningless in a
// different process. Trylock failures never reach the trace, so that
// column reads 0 offline.
//
// The JSON "parsing" is deliberately a tolerant hand-rolled key
// scanner, not a JSON library: the emitters' schemas are flat and
// known, the tool must build with zero dependencies, and a trace
// truncated mid-line (crashed process) should still yield every
// complete event before the tear.
#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <string_view>
#include <vector>

#include "observe/histogram.hpp"
#include "observe/lockstat.hpp"

namespace {

constexpr std::uint32_t kNoClsTag = 0xFFFFFFFFu;

// ---------------------------------------------------------------------
// Tolerant key extraction. Searches `"key":` and parses the value that
// follows — a number, or a quoted string with minimal unescaping.
// Top-level and args keys in our schemas never collide, so a flat scan
// over one event object is unambiguous.
// ---------------------------------------------------------------------

std::size_t find_key(std::string_view obj, std::string_view key) {
  std::string pat;
  pat.reserve(key.size() + 3);
  pat += '"';
  pat += key;
  pat += "\":";
  const std::size_t pos = obj.find(pat);
  if (pos == std::string_view::npos) return std::string_view::npos;
  return pos + pat.size();
}

bool find_string(std::string_view obj, std::string_view key,
                 std::string& out) {
  std::size_t p = find_key(obj, key);
  if (p == std::string_view::npos) return false;
  while (p < obj.size() && (obj[p] == ' ' || obj[p] == '\t')) ++p;
  if (p >= obj.size() || obj[p] != '"') return false;
  ++p;
  out.clear();
  while (p < obj.size() && obj[p] != '"') {
    char c = obj[p];
    if (c == '\\' && p + 1 < obj.size()) {
      ++p;
      switch (obj[p]) {
        case 'n': c = '\n'; break;
        case 't': c = '\t'; break;
        case 'r': c = '\r'; break;
        case 'u':
          // \uXXXX: decode the low byte (the escaper only emits
          // control bytes this way).
          if (p + 4 < obj.size()) {
            c = static_cast<char>(
                std::strtoul(std::string(obj.substr(p + 1, 4)).c_str(),
                             nullptr, 16));
            p += 4;
          }
          break;
        default: c = obj[p];
      }
    }
    out += c;
    ++p;
  }
  return p < obj.size();
}

bool find_double(std::string_view obj, std::string_view key, double& out) {
  const std::size_t p = find_key(obj, key);
  if (p == std::string_view::npos) return false;
  out = std::strtod(std::string(obj.substr(p, 32)).c_str(), nullptr);
  return true;
}

bool find_u64(std::string_view obj, std::string_view key,
              std::uint64_t& out) {
  double d = 0;
  if (!find_double(obj, key, d)) return false;
  out = static_cast<std::uint64_t>(d);
  return true;
}

// "0x..." hex string field (lock addresses, call sites).
bool find_hex(std::string_view obj, std::string_view key,
              std::uint64_t& out) {
  std::string s;
  if (!find_string(obj, key, s)) return false;
  out = std::strtoull(s.c_str(), nullptr, 16);
  return true;
}

bool is_misuse_kind(std::string_view kind) {
  return kind == "unbalanced-unlock" || kind == "double-unlock" ||
         kind == "non-owner-unlock" || kind == "reentrant-relock" ||
         kind == "unbalanced-read-unlock" || kind == "rw-mode-mismatch" ||
         kind == "non-owner-write-unlock";
}

std::size_t mode_index(std::string_view mode) {
  if (mode == "read") return 1;
  if (mode == "write") return 2;
  return 0;  // exclusive (or absent)
}

// ---------------------------------------------------------------------
// Accumulators, shaped to feed observe::write_report unchanged.
// ---------------------------------------------------------------------

struct ClassAgg {
  std::string label;
  resilock::observe::HistogramSnapshot wait;
  resilock::observe::HistogramSnapshot hold;
  std::uint64_t misuses = 0;
  std::uint64_t parks = 0;    // park-begin .. park-end kernel sleeps
  std::uint64_t park_ns = 0;  // descheduled total, subset of wait
  std::uint64_t by_mode[3] = {};
  std::map<std::uint64_t, std::uint64_t> sites;  // addr -> count
};

struct ThreadAgg {
  std::uint64_t waits = 0;
  std::uint64_t total_ns = 0;
  std::uint64_t max_ns = 0;
  std::uint64_t first_ns = ~std::uint64_t{0};
  std::uint64_t last_ns = 0;
};

struct WaitSpan {
  std::uint64_t begin_ns = 0;
  std::uint64_t dur_ns = 0;
  std::uint32_t pid = 0;
  std::uint32_t cls = kNoClsTag;
};

struct Analysis {
  std::map<std::uint32_t, ClassAgg> classes;
  std::map<std::uint32_t, ThreadAgg> threads;
  std::vector<WaitSpan> wait_spans;
  std::uint64_t unpaired = 0;  // ends without begins (ring drops)

  ClassAgg& cls_agg(std::uint32_t cls, const std::string& label) {
    ClassAgg& a = classes[cls];
    if (a.label.empty() && !label.empty()) a.label = label;
    return a;
  }

  void add_wait(std::uint32_t pid, std::uint32_t cls,
                const std::string& label, std::uint64_t begin_ns,
                std::uint64_t dur_ns) {
    cls_agg(cls, label).wait.add(dur_ns);
    ThreadAgg& t = threads[pid];
    ++t.waits;
    t.total_ns += dur_ns;
    if (dur_ns > t.max_ns) t.max_ns = dur_ns;
    if (begin_ns < t.first_ns) t.first_ns = begin_ns;
    if (begin_ns + dur_ns > t.last_ns) t.last_ns = begin_ns + dur_ns;
    wait_spans.push_back(WaitSpan{begin_ns, dur_ns, pid, cls});
  }

  void add_hold(std::uint32_t cls, const std::string& label,
                std::uint64_t dur_ns, std::size_t mode,
                std::uint64_t site) {
    ClassAgg& a = cls_agg(cls, label);
    a.hold.add(dur_ns);
    ++a.by_mode[mode % 3];
    if (site != 0) ++a.sites[site];
  }

  void add_park(std::uint32_t cls, const std::string& label,
                std::uint64_t dur_ns) {
    ClassAgg& a = cls_agg(cls, label);
    ++a.parks;
    a.park_ns += dur_ns;
  }
};

// ---------------------------------------------------------------------
// JSONL ingestion: pair begin/end events per (pid, lock, span class).
// ---------------------------------------------------------------------

struct OpenSpan {
  std::uint64_t ns = 0;
  std::uint64_t site = 0;
  std::uint32_t cls = kNoClsTag;
  std::string label;
  std::size_t mode = 0;
};

void ingest_jsonl(std::istream& in, Analysis& out) {
  // (pid, lock, 0=hold|1=wait) -> open span.
  std::map<std::tuple<std::uint64_t, std::uint64_t, int>, OpenSpan> open;
  std::string line;
  while (std::getline(in, line)) {
    std::string kind;
    if (!find_string(line, "kind", kind)) continue;
    std::uint64_t ns = 0, pid = 0, lock = 0, cls64 = kNoClsTag;
    find_u64(line, "ns", ns);
    find_u64(line, "pid", pid);
    find_hex(line, "lock", lock);
    find_u64(line, "cls", cls64);
    const auto cls = static_cast<std::uint32_t>(cls64);
    std::string label;
    find_string(line, "cls_label", label);
    if (kind == "hold-begin" || kind == "wait-begin" ||
        kind == "park-begin") {
      const int sc = kind[0] == 'h' ? 0 : (kind[0] == 'w' ? 1 : 2);
      OpenSpan o;
      o.ns = ns;
      o.cls = cls;
      o.label = label;
      find_hex(line, "site", o.site);
      std::string mode;
      find_string(line, "mode", mode);
      o.mode = mode_index(mode);
      open[{pid, lock, sc}] = o;
      continue;
    }
    if (kind == "hold-end" || kind == "wait-end" || kind == "park-end") {
      const int sc = kind[0] == 'h' ? 0 : (kind[0] == 'w' ? 1 : 2);
      const auto it = open.find({pid, lock, sc});
      if (it == open.end()) {
        ++out.unpaired;
        continue;
      }
      const OpenSpan o = it->second;
      open.erase(it);
      const std::uint64_t dur = ns >= o.ns ? ns - o.ns : 0;
      // The END event's class tag wins when the begin fired before the
      // class registered (first contended acquire).
      const std::uint32_t c = cls != kNoClsTag ? cls : o.cls;
      const std::string& lb = !label.empty() ? label : o.label;
      if (sc == 1) {
        out.add_wait(static_cast<std::uint32_t>(pid), c, lb, o.ns, dur);
      } else if (sc == 2) {
        out.add_park(c, lb, dur);
      } else {
        out.add_hold(c, lb, dur, o.mode, o.site);
      }
      continue;
    }
    if (is_misuse_kind(kind)) {
      ++out.cls_agg(cls, label).misuses;
    }
  }
}

// ---------------------------------------------------------------------
// Perfetto ingestion: the sink already paired spans into ph:"X"
// complete events; scan the traceEvents array elements (brace-depth
// walk, string-aware) and read them off directly.
// ---------------------------------------------------------------------

void ingest_perfetto_event(std::string_view obj, Analysis& out) {
  std::string ph;
  if (!find_string(obj, "ph", ph) || ph == "M") return;
  std::string name;
  find_string(obj, "name", name);
  std::uint64_t tid = 0, cls64 = kNoClsTag;
  find_u64(obj, "tid", tid);
  find_u64(obj, "cls", cls64);
  const auto cls = static_cast<std::uint32_t>(cls64);
  std::string label;
  find_string(obj, "cls_label", label);
  if (ph == "X") {
    double ts_us = 0, dur_us = 0;
    find_double(obj, "ts", ts_us);
    find_double(obj, "dur", dur_us);
    const auto begin_ns =
        static_cast<std::uint64_t>(std::llround(ts_us * 1000.0));
    const auto dur_ns =
        static_cast<std::uint64_t>(std::llround(dur_us * 1000.0));
    if (name == "lock-wait") {
      out.add_wait(static_cast<std::uint32_t>(tid), cls, label, begin_ns,
                   dur_ns);
    } else if (name == "lock-park") {
      out.add_park(cls, label, dur_ns);
    } else if (name == "lock-hold") {
      std::string mode;
      find_string(obj, "mode", mode);
      std::uint64_t site = 0;
      find_hex(obj, "site", site);
      out.add_hold(cls, label, dur_ns, mode_index(mode), site);
    }
    return;
  }
  if (ph == "i" && is_misuse_kind(name)) {
    ++out.cls_agg(cls, label).misuses;
  }
}

void ingest_perfetto(std::string_view doc, Analysis& out) {
  // Element objects of traceEvents sit at brace depth 2 (document
  // object -> element). Braces inside strings are skipped.
  int depth = 0;
  bool in_string = false;
  std::size_t start = 0;
  for (std::size_t i = 0; i < doc.size(); ++i) {
    const char c = doc[i];
    if (in_string) {
      if (c == '\\') {
        ++i;
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == '{') {
      if (++depth == 2) start = i;
    } else if (c == '}') {
      if (depth-- == 2) {
        ingest_perfetto_event(doc.substr(start, i - start + 1), out);
      }
    }
  }
}

// ---------------------------------------------------------------------
// Output.
// ---------------------------------------------------------------------

std::vector<resilock::observe::ClassReport> to_reports(
    const Analysis& a) {
  std::vector<resilock::observe::ClassReport> out;
  for (const auto& [cls, agg] : a.classes) {
    resilock::observe::ClassReport r;
    r.cls = static_cast<resilock::lockdep::ClassId>(cls);
    if (!agg.label.empty()) {
      r.label = agg.label;
    } else if (cls == kNoClsTag) {
      r.label = "(untracked)";
    } else {
      r.label = "class#" + std::to_string(cls);
    }
    r.acquisitions = agg.hold.count;
    r.contentions = agg.wait.count;
    r.misuses = agg.misuses;
    r.parks = agg.parks;
    r.park_time = agg.park_ns;
    // Every park span in the trace ended with a wake (a timed-out or
    // interrupted park re-checks and loops inside one span), so the
    // offline reconstruction equates wakes with parks.
    r.wakes = agg.parks;
    for (std::size_t m = 0; m < 3; ++m) r.by_mode[m] = agg.by_mode[m];
    r.wait = agg.wait;
    r.hold = agg.hold;
    for (const auto& [site, count] : agg.sites) {
      r.sites.push_back(resilock::observe::CallSiteRow{
          static_cast<std::uintptr_t>(site), count});
    }
    std::sort(r.sites.begin(), r.sites.end(),
              [](const auto& x, const auto& y) { return x.count > y.count; });
    out.push_back(std::move(r));
  }
  std::sort(out.begin(), out.end(), [](const auto& x, const auto& y) {
    if (x.wait.total != y.wait.total) return x.wait.total > y.wait.total;
    return x.acquisitions > y.acquisitions;
  });
  return out;
}

void write_thread_timeline(std::FILE* f, const Analysis& a,
                           bool full_timeline) {
  if (a.threads.empty()) return;
  std::fputs(
      "\nper-thread wait timeline (times in ns)\n"
      "  pid      waits      total wait        max       first ts"
      "        last ts\n",
      f);
  for (const auto& [pid, t] : a.threads) {
    std::fprintf(f, "  %-5u %8llu %15llu %10llu %14llu %14llu\n",
                 static_cast<unsigned>(pid),
                 static_cast<unsigned long long>(t.waits),
                 static_cast<unsigned long long>(t.total_ns),
                 static_cast<unsigned long long>(t.max_ns),
                 static_cast<unsigned long long>(
                     t.first_ns == ~std::uint64_t{0} ? 0 : t.first_ns),
                 static_cast<unsigned long long>(t.last_ns));
  }
  if (!full_timeline) return;
  std::vector<WaitSpan> spans = a.wait_spans;
  std::sort(spans.begin(), spans.end(),
            [](const WaitSpan& x, const WaitSpan& y) {
              return x.begin_ns < y.begin_ns;
            });
  std::fputs("\nwait spans (chronological)\n", f);
  for (const WaitSpan& s : spans) {
    const auto it = a.classes.find(s.cls);
    const char* label = it != a.classes.end() && !it->second.label.empty()
                            ? it->second.label.c_str()
                            : "?";
    std::fprintf(f, "  %14llu  pid %-5u  %10llu ns  %s\n",
                 static_cast<unsigned long long>(s.begin_ns),
                 static_cast<unsigned>(s.pid),
                 static_cast<unsigned long long>(s.dur_ns), label);
  }
}

void escape_into(std::string& out, const std::string& s) {
  for (const char c : s) {
    if (c == '"' || c == '\\') out += '\\';
    out += c;
  }
}

bool write_json(const char* path, const Analysis& a,
                const std::vector<resilock::observe::ClassReport>& reports) {
  std::FILE* f = std::fopen(path, "w");
  if (f == nullptr) return false;
  std::fputs("{\"classes\":[", f);
  bool first = true;
  for (const auto& r : reports) {
    std::string label;
    escape_into(label, r.label);
    std::fprintf(
        f,
        "%s{\"label\":\"%s\",\"cls\":%u,\"waits\":%llu,"
        "\"acquisitions\":%llu,\"misuses\":%llu,"
        "\"wait_total_ns\":%llu,\"wait_p50_ns\":%llu,"
        "\"wait_p99_ns\":%llu,\"wait_max_ns\":%llu,"
        "\"hold_total_ns\":%llu,\"parks\":%llu,\"park_ns\":%llu,"
        "\"sites\":%zu}",
        first ? "" : ",", label.c_str(), static_cast<unsigned>(r.cls),
        static_cast<unsigned long long>(r.contentions),
        static_cast<unsigned long long>(r.acquisitions),
        static_cast<unsigned long long>(r.misuses),
        static_cast<unsigned long long>(r.wait.total),
        static_cast<unsigned long long>(r.wait.percentile(0.50)),
        static_cast<unsigned long long>(r.wait.percentile(0.99)),
        static_cast<unsigned long long>(r.wait.max),
        static_cast<unsigned long long>(r.hold.total),
        static_cast<unsigned long long>(r.parks),
        static_cast<unsigned long long>(r.park_time), r.sites.size());
    first = false;
  }
  std::fputs("],\"threads\":[", f);
  first = true;
  for (const auto& [pid, t] : a.threads) {
    std::fprintf(f,
                 "%s{\"pid\":%u,\"waits\":%llu,\"wait_total_ns\":%llu,"
                 "\"wait_max_ns\":%llu}",
                 first ? "" : ",", static_cast<unsigned>(pid),
                 static_cast<unsigned long long>(t.waits),
                 static_cast<unsigned long long>(t.total_ns),
                 static_cast<unsigned long long>(t.max_ns));
    first = false;
  }
  std::fprintf(f, "],\"unpaired_spans\":%llu}\n",
               static_cast<unsigned long long>(a.unpaired));
  std::fclose(f);
  return true;
}

int usage(const char* argv0) {
  std::fprintf(
      stderr,
      "usage: %s <trace.jsonl|trace.json> [--top N] [--timeline] "
      "[--json <out.json>]\n"
      "  Reconstructs the lockstat contention table and per-thread\n"
      "  wait timeline from a resilock JSONL or perfetto trace.\n",
      argv0);
  return 2;
}

}  // namespace

int main(int argc, char** argv) {
  const char* path = nullptr;
  const char* json_out = nullptr;
  std::size_t top_sites = 4;
  bool full_timeline = false;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--top" && i + 1 < argc) {
      top_sites = static_cast<std::size_t>(std::strtoul(argv[++i], nullptr, 10));
    } else if (arg == "--timeline") {
      full_timeline = true;
    } else if (arg == "--json" && i + 1 < argc) {
      json_out = argv[++i];
    } else if (!arg.empty() && arg[0] == '-') {
      return usage(argv[0]);
    } else if (path == nullptr) {
      path = argv[i];
    } else {
      return usage(argv[0]);
    }
  }
  if (path == nullptr) return usage(argv[0]);

  std::ifstream in(path, std::ios::binary);
  if (!in) {
    std::fprintf(stderr, "resilock_report: cannot open %s\n", path);
    return 1;
  }
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string doc = buf.str();

  // Format sniff: a perfetto document is one object owning
  // "traceEvents"; everything else is treated as JSONL.
  const std::size_t first_ch = doc.find_first_not_of(" \t\r\n");
  Analysis a;
  if (first_ch != std::string::npos && doc[first_ch] == '{' &&
      doc.compare(first_ch, 15, "{\"traceEvents\":") == 0) {
    ingest_perfetto(doc, a);
  } else {
    std::istringstream lines(doc);
    ingest_jsonl(lines, a);
  }

  const auto reports = to_reports(a);
  // Same renderer as the live lockstat dump; raw-hex sites (symbol
  // resolution in a different process would be fiction).
  resilock::observe::write_report(stdout, reports, top_sites,
                                  /*symbolize=*/false);
  write_thread_timeline(stdout, a, full_timeline);
  if (a.unpaired != 0) {
    std::fprintf(stdout,
                 "\nnote: %llu span end(s) without a begin "
                 "(ring drops in the traced process)\n",
                 static_cast<unsigned long long>(a.unpaired));
  }
  if (json_out != nullptr && !write_json(json_out, a, reports)) {
    std::fprintf(stderr, "resilock_report: cannot write %s\n", json_out);
    return 1;
  }
  return 0;
}
