// resilock_drive — multi-process head-to-head driver for the LD_PRELOAD
// harness (the paper's evaluation shape: the same unmodified binary run
// bare and interposed, swept across thread counts and placements).
//
// For each (workload, threads) cell it forks resilock_workload three
// ways:
//
//   bare       no preload — glibc locks, the baseline
//   shielded   LD_PRELOAD with the minimal stack: shield on, lockdep
//              off, no telemetry (the "protection overhead" column)
//   fullstack  LD_PRELOAD with everything: lockdep report mode,
//              lockstat, parking, telemetry collector
//
// plus a misuse row per workload (bare vs shielded at a fixed injection
// rate) showing "corrupt" vs "ok" — the paper's Table 1 outcome
// reproduced end-to-end from outside the process.
//
// Output: a human table on stderr and a JSON document on --out (the
// checked-in snapshot is BENCH_interpose.json). --quick shrinks the
// sweep for CI smoke.

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "platform/affinity.hpp"
#include "platform/topology.hpp"

#ifndef RESILOCK_PRELOAD_LIB
#define RESILOCK_PRELOAD_LIB "libresilock_preload.so"
#endif
#ifndef RESILOCK_WORKLOAD_BIN
#define RESILOCK_WORKLOAD_BIN "resilock_workload"
#endif

namespace {

namespace rp = resilock::platform;

struct RunResult {
  bool ran = false;
  double ops_s = 0.0;
  std::uint64_t ops = 0;
  std::string check = "none";
  std::uint64_t misuses = 0;
};

struct EnvVar {
  const char* name;
  std::string value;
};

// Fork/exec the workload with env overrides, capture stdout, parse the
// JSON result line. A child that dies (watchdog, crash) yields
// ran=false with check="died" — a legitimate bare+misuse outcome.
RunResult run_child(const std::vector<std::string>& args,
                    const std::vector<EnvVar>& env) {
  RunResult res;
  int fds[2];
  if (pipe(fds) != 0) return res;
  const pid_t pid = fork();
  if (pid < 0) {
    close(fds[0]);
    close(fds[1]);
    return res;
  }
  if (pid == 0) {
    close(fds[0]);
    dup2(fds[1], STDOUT_FILENO);
    close(fds[1]);
    for (const EnvVar& e : env) setenv(e.name, e.value.c_str(), 1);
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (const std::string& a : args) {
      argv.push_back(const_cast<char*>(a.c_str()));
    }
    argv.push_back(nullptr);
    execv(argv[0], argv.data());
    _exit(127);
  }
  close(fds[1]);
  std::string out;
  char buf[4096];
  for (;;) {
    const ssize_t n = read(fds[0], buf, sizeof(buf));
    if (n <= 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  close(fds[0]);
  int status = 0;
  waitpid(pid, &status, 0);
  if (!WIFEXITED(status) || WEXITSTATUS(status) != 0) {
    res.check = "died";
    return res;
  }
  auto num_after = [&out](const char* key) -> double {
    const std::size_t p = out.find(key);
    if (p == std::string::npos) return 0.0;
    return std::atof(out.c_str() + p + std::strlen(key));
  };
  auto str_after = [&out](const char* key) -> std::string {
    const std::size_t p = out.find(key);
    if (p == std::string::npos) return "none";
    const std::size_t s = p + std::strlen(key);
    const std::size_t e = out.find('"', s);
    return e == std::string::npos ? "none" : out.substr(s, e - s);
  };
  res.ran = true;
  res.ops_s = num_after("\"throughput_ops_s\":");
  res.ops = static_cast<std::uint64_t>(num_after("\"ops\":"));
  res.misuses =
      static_cast<std::uint64_t>(num_after("\"misuses_injected\":"));
  res.check = str_after("\"check\":\"");
  return res;
}

std::string join_cpus(const std::vector<int>& cpus) {
  std::string s;
  for (std::size_t i = 0; i < cpus.size(); ++i) {
    if (i != 0) s += ',';
    s += std::to_string(cpus[i]);
  }
  return s;
}

enum class Mode { kBare, kShielded, kFullstack };

std::vector<EnvVar> env_for(Mode m) {
  switch (m) {
    case Mode::kBare:
      return {};
    case Mode::kShielded:
      // TAS matches the baseline's fairness class: glibc mutexes are
      // competitive-handoff, and a FIFO queue lock under
      // oversubscription (CI runners) measures scheduler convoys, not
      // interposition cost. Spin-then-park is the production tier.
      return {{"LD_PRELOAD", RESILOCK_PRELOAD_LIB},
              {"RESILOCK_SHIELD", "1"},
              {"RESILOCK_ALGO", "TAS"},
              {"RESILOCK_RW_COHORT", "C-BO-BO"},
              {"RESILOCK_LOCKDEP", "off"},
              {"RESILOCK_TELEMETRY", "0"},
              {"RESILOCK_LOCKSTAT", "0"},
              {"RESILOCK_PARK", "1"}};
    case Mode::kFullstack:
      return {{"LD_PRELOAD", RESILOCK_PRELOAD_LIB},
              {"RESILOCK_SHIELD", "1"},
              {"RESILOCK_ALGO", "TAS"},
              {"RESILOCK_RW_COHORT", "C-BO-BO"},
              {"RESILOCK_LOCKDEP", "report"},
              {"RESILOCK_TELEMETRY", "1"},
              {"RESILOCK_LOCKSTAT", "1"},
              {"RESILOCK_PARK", "1"}};
  }
  return {};
}

struct PerfRow {
  std::string workload;
  int threads = 0;
  RunResult bare, shielded, fullstack;
};

struct MisuseRow {
  std::string workload;
  int threads = 0;
  double rate = 0.0;
  RunResult bare, shielded;
};

double ratio(const RunResult& num, const RunResult& den) {
  if (!num.ran || !den.ran || den.ops_s <= 0.0) return 0.0;
  return num.ops_s / den.ops_s;
}

int usage(const char* argv0) {
  std::fprintf(stderr,
               "usage: %s [--quick] [--workloads a,b] [--threads 2,4,8]\n"
               "          [--duration-ms MS] [--placement compact|spread]\n"
               "          [--out FILE]\n",
               argv0);
  return 2;
}

std::vector<std::string> split_csv(const char* s) {
  std::vector<std::string> out;
  std::string cur;
  for (const char* p = s; *p != '\0'; ++p) {
    if (*p == ',') {
      if (!cur.empty()) out.push_back(cur);
      cur.clear();
    } else {
      cur += *p;
    }
  }
  if (!cur.empty()) out.push_back(cur);
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::vector<std::string> workloads = {"ledger", "pipeline", "rwcache"};
  std::vector<int> thread_counts = {2, 4, 8};
  long duration_ms = 3000;
  rp::Placement placement = rp::Placement::kCompact;
  std::string placement_name = "compact";
  std::string out_path = "BENCH_interpose.json";

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return (i + 1 < argc) ? argv[++i] : nullptr;
    };
    if (arg == "--quick") {
      quick = true;
    } else if (arg == "--workloads") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      workloads = split_csv(v);
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      thread_counts.clear();
      for (const std::string& t : split_csv(v)) {
        thread_counts.push_back(std::atoi(t.c_str()));
      }
    } else if (arg == "--duration-ms") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      duration_ms = std::atol(v);
    } else if (arg == "--placement") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      placement_name = v;
      placement = (placement_name == "spread") ? rp::Placement::kSpread
                                               : rp::Placement::kCompact;
    } else if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return usage(argv[0]);
      out_path = v;
    } else {
      return usage(argv[0]);
    }
  }
  if (quick) {
    duration_ms = 500;
    thread_counts = {2, 4};
  }

  const rp::Topology& topo = rp::Topology::host_default();
  const std::vector<int> cpus = rp::allowed_cpus();
  const unsigned hw = rp::hardware_threads();

  std::vector<PerfRow> rows;
  std::vector<MisuseRow> misuse_rows;

  for (const std::string& w : workloads) {
    for (int t : thread_counts) {
      if (w == "pipeline" && t < 3) continue;
      PerfRow row;
      row.workload = w;
      row.threads = t;
      const std::vector<int> pins = rp::placement_cpus(
          topo, cpus, static_cast<std::size_t>(t), placement);
      std::vector<std::string> args = {
          RESILOCK_WORKLOAD_BIN,    "--workload",
          w,                        "--threads",
          std::to_string(t),        "--duration-ms",
          std::to_string(duration_ms)};
      if (!pins.empty()) {
        args.push_back("--cpus");
        args.push_back(join_cpus(pins));
      }
      std::fprintf(stderr, "drive: %s threads=%d ...\n", w.c_str(), t);
      row.bare = run_child(args, env_for(Mode::kBare));
      row.shielded = run_child(args, env_for(Mode::kShielded));
      row.fullstack = run_child(args, env_for(Mode::kFullstack));
      std::fprintf(stderr,
                   "  bare %.0f ops/s | shielded %.0f (%.2fx) | "
                   "fullstack %.0f (%.2fx)\n",
                   row.bare.ops_s, row.shielded.ops_s,
                   ratio(row.bare, row.shielded), row.fullstack.ops_s,
                   ratio(row.bare, row.fullstack));
      rows.push_back(row);
    }

    // Misuse head-to-head: moderate injection at a mid sweep point.
    MisuseRow mr;
    mr.workload = w;
    mr.threads = thread_counts.size() > 1 ? thread_counts[1]
                                          : thread_counts[0];
    if (w == "pipeline" && mr.threads < 3) mr.threads = 3;
    mr.rate = 0.01;
    std::vector<std::string> margs = {
        RESILOCK_WORKLOAD_BIN,    "--workload",
        w,                        "--threads",
        std::to_string(mr.threads), "--duration-ms",
        std::to_string(duration_ms), "--misuse-rate",
        "0.01"};
    // Bare pipeline misuse can deadlock on a corrupted queue mutex;
    // the workload's watchdog turns that into check="died".
    mr.bare = run_child(margs, env_for(Mode::kBare));
    mr.shielded = run_child(margs, env_for(Mode::kShielded));
    std::fprintf(stderr,
                 "  misuse %s threads=%d: bare=%s shielded=%s "
                 "(injected %llu)\n",
                 w.c_str(), mr.threads, mr.bare.check.c_str(),
                 mr.shielded.check.c_str(),
                 static_cast<unsigned long long>(mr.shielded.misuses));
    misuse_rows.push_back(mr);
  }

  std::FILE* f = std::fopen(out_path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "drive: cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::fprintf(f,
               "{\n  \"bench\": \"interpose_head_to_head\",\n"
               "  \"hw_threads\": %u,\n  \"duration_ms\": %ld,\n"
               "  \"placement\": \"%s\",\n  \"rows\": [\n",
               hw, duration_ms, placement_name.c_str());
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const PerfRow& r = rows[i];
    std::fprintf(
        f,
        "    {\"workload\": \"%s\", \"threads\": %d, "
        "\"bare_ops_s\": %.1f, \"shielded_ops_s\": %.1f, "
        "\"fullstack_ops_s\": %.1f, \"bare_over_shielded\": %.3f, "
        "\"bare_over_fullstack\": %.3f}%s\n",
        r.workload.c_str(), r.threads, r.bare.ops_s, r.shielded.ops_s,
        r.fullstack.ops_s, ratio(r.bare, r.shielded),
        ratio(r.bare, r.fullstack), i + 1 < rows.size() ? "," : "");
  }
  std::fprintf(f, "  ],\n  \"misuse\": [\n");
  for (std::size_t i = 0; i < misuse_rows.size(); ++i) {
    const MisuseRow& m = misuse_rows[i];
    std::fprintf(
        f,
        "    {\"workload\": \"%s\", \"threads\": %d, \"rate\": %.3f, "
        "\"bare_check\": \"%s\", \"shielded_check\": \"%s\", "
        "\"misuses_injected\": %llu}%s\n",
        m.workload.c_str(), m.threads, m.rate, m.bare.check.c_str(),
        m.shielded.check.c_str(),
        static_cast<unsigned long long>(m.shielded.misuses),
        i + 1 < misuse_rows.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::fprintf(stderr, "drive: wrote %s\n", out_path.c_str());
  return 0;
}
